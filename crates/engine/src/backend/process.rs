//! The multi-process backend and its serialized cell-shard protocol.
//!
//! # Wire protocol
//!
//! The parent splits the scheduler's shard into instance-grouped stripes (one per worker;
//! graph instances round-robined in LPT order, so cells sharing an instance co-locate and
//! no instance is generated twice across the fleet) and, per worker, spawns
//! `sweep --worker --threads T`:
//!
//! * **stdin** — one JSON document: the worker's [`CellShard`] (base seed, code-version
//!   tag, and `Scenario` coordinates). The worker reads it whole before executing
//!   anything, then refuses it unless the code version matches its own build.
//! * **stdout** — newline-delimited JSON, one `{"index": i, "cell": {…}}` line per finished
//!   cell (in completion order — the index maps back to the stripe), terminated by a
//!   sentinel `{"done": n, "observations": […]}` line carrying the worker's cost-model
//!   observation sums. When the parent requested telemetry (`--telemetry <ms>`), the
//!   stream additionally carries `{"telemetry": …}` heartbeat records (progress + counter
//!   totals, see [`super::telemetry::WorkerTelemetry`]) and one final `{"spans": …}` dump
//!   of the worker's span buffers ([`super::telemetry::SpanDump`]) right before the
//!   sentinel — both strictly additive, so mixed-version fleets exchange exactly the
//!   pre-existing record bytes.
//! * **stderr** — captured line by line, re-emitted on the parent's stderr prefixed with
//!   the worker id (`[worker 3] …`); the last few lines ride along in the failure reason
//!   when a worker dies, so the rescue-path log says *why*.
//!
//! # Failure semantics
//!
//! Every result line is verified against the cell it claims to be (problem, family, size,
//! replicate, *and* the derived execution seed) before it is accepted. A worker that exits
//! nonzero, truncates its stream, repeats an index, or emits anything unparseable is
//! abandoned on the spot: its already-verified cells stand, and the parent re-executes the
//! rest with an [`InProcessBackend`] — so a killed or garbage-spewing worker degrades wall
//! clock, never the report.

use super::telemetry::{SpanDump, WorkerTelemetry};
use super::{CellShard, EmitFn, ExecBackend, InProcessBackend};
use crate::cost::CostModel;
use crate::pool;
use crate::progress::ProgressMeter;
use crate::report::CellResult;
use serde::{Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::process::{Command, Stdio};
use std::sync::{Arc, Mutex};

/// How many trailing worker-stderr lines ride along in a failure reason.
const STDERR_TAIL: usize = 8;

/// Executes shards by fanning stripes out to `sweep --worker` subprocesses.
#[derive(Debug)]
pub struct ProcessBackend {
    workers: usize,
    worker_threads: usize,
    command: Vec<String>,
    observed: Mutex<CostModel>,
    progress: Option<ProgressMeter>,
    heartbeat_ms: u64,
}

impl ProcessBackend {
    /// A backend that spawns `workers` subprocesses (`0` = available parallelism), each
    /// re-invoking the current executable in `--worker` mode with one thread. The current
    /// executable is the right command when the caller *is* the `sweep` binary; library
    /// embedders and tests point elsewhere with [`ProcessBackend::with_command`].
    pub fn new(workers: usize) -> Self {
        let command =
            std::env::current_exe().map(|exe| vec![exe.display().to_string()]).unwrap_or_default();
        ProcessBackend::with_command(workers, command)
    }

    /// Like [`ProcessBackend::new`] with an explicit worker command line (program + leading
    /// arguments; `--worker --threads T` is appended at spawn time).
    pub fn with_command(workers: usize, command: impl Into<Vec<String>>) -> Self {
        ProcessBackend {
            workers: pool::resolve_worker_count(workers),
            worker_threads: 1,
            command: command.into(),
            observed: Mutex::new(CostModel::new()),
            progress: None,
            heartbeat_ms: 500,
        }
    }

    /// Sets how many threads each worker process runs its stripe with (`0` = the worker
    /// machine's available parallelism; default 1 — process-level parallelism usually wants
    /// single-threaded workers).
    pub fn worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }

    /// Attaches a live progress meter: workers are asked for heartbeats, and both result
    /// lines and heartbeat records update the per-worker throughput display.
    pub fn progress(mut self, meter: ProgressMeter) -> Self {
        self.progress = Some(meter);
        self
    }

    /// Sets the worker heartbeat interval (default 500ms; only used when telemetry is on).
    pub fn heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms.max(1);
        self
    }

    /// Whether to ask workers for telemetry, and at what interval: yes when a progress
    /// meter is attached or the coordinator's own obs layer is recording.
    fn telemetry_interval(&self) -> Option<u64> {
        (self.progress.is_some() || local_obs::is_enabled()).then_some(self.heartbeat_ms)
    }

    /// Dispatches one stripe to one worker subprocess. Returns the indices (into the
    /// stripe) of the cells that still need a result, plus a description of what went wrong
    /// when the stream could not be fully trusted.
    fn run_stripe(
        &self,
        worker: usize,
        stripe: &CellShard,
        parent_indices: &[usize],
        emit: &EmitFn,
    ) -> Result<(), (Vec<usize>, String)> {
        let all = || (0..stripe.cells.len()).collect::<Vec<usize>>();
        if self.command.is_empty() {
            return Err((all(), "no worker command (current_exe unavailable)".into()));
        }
        let mut command = Command::new(&self.command[0]);
        command
            .args(&self.command[1..])
            .arg("--worker")
            .args(["--threads", &self.worker_threads.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        if let Some(ms) = self.telemetry_interval() {
            command.args(["--telemetry", &ms.to_string()]);
        }
        // Worker span timestamps are relative to the worker's own start; record the spawn
        // time so the final span dump can be rebased onto the coordinator's timeline.
        let spawn_offset = local_obs::now_micros();
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e) => return Err((all(), format!("cannot spawn worker: {e}"))),
        };

        // Drain stderr on a dedicated thread: re-emit each line prefixed with the worker
        // id, and keep a short tail for the failure reason. The thread ends at pipe EOF
        // (worker exit), so joining after `wait` below cannot hang.
        let stderr_tail = Arc::new(Mutex::new(VecDeque::<String>::new()));
        let stderr_thread = child.stderr.take().map(|stderr| {
            let tail = Arc::clone(&stderr_tail);
            std::thread::spawn(move || {
                for line in BufReader::new(stderr).lines().map_while(Result::ok) {
                    eprintln!("[worker {worker}] {line}");
                    let mut tail = tail.lock().expect("stderr tail poisoned");
                    if tail.len() == STDERR_TAIL {
                        tail.pop_front();
                    }
                    tail.push_back(line);
                }
            })
        });
        let worker_label = format!("worker {worker}");

        // Ship the stripe. The worker reads all of stdin before producing anything, so
        // writing the whole document and closing the pipe cannot deadlock. A worker that
        // exits early (bad binary) breaks the pipe — treated like any other stream failure.
        let shipped = serde_json::to_string(stripe).expect("shard serializes");
        let write_failed = match child.stdin.take() {
            Some(mut stdin) => stdin.write_all(shipped.as_bytes()).is_err(),
            None => true,
        };

        let mut emitted = vec![false; stripe.cells.len()];
        // Per-line calibration shadow: observed alongside acceptance so that verified cells
        // still calibrate the model when the worker later fails and its sentinel (the
        // normal carrier of observation sums) never arrives or cannot be trusted.
        let mut line_observed = CostModel::new();
        let mut failure =
            if write_failed { Some("worker closed stdin early".into()) } else { None };
        let mut sentinel: Option<Value> = None;
        if failure.is_none() {
            let stdout = child.stdout.take().expect("stdout was piped");
            let mut lines = BufReader::new(stdout).lines();
            loop {
                let line = match lines.next() {
                    Some(Ok(line)) => line,
                    Some(Err(e)) => {
                        failure = Some(format!("stream read error: {e}"));
                        break;
                    }
                    None => {
                        failure = Some("stream truncated before the sentinel".into());
                        break;
                    }
                };
                let value = match serde_json::from_str(&line) {
                    Ok(value) => value,
                    Err(e) => {
                        failure = Some(format!("garbage on stdout: {e}"));
                        break;
                    }
                };
                if value.get("done").is_some() {
                    sentinel = Some(value);
                    break;
                }
                // Telemetry record kinds (only present when the parent asked for them).
                // A record that *claims* a kind but does not parse is treated like any
                // other garbage: stop trusting the stream.
                if let Some(t) = value.get("telemetry") {
                    match WorkerTelemetry::from_value(t) {
                        Ok(heartbeat) => {
                            if let Some(meter) = &self.progress {
                                meter.worker_progress(&worker_label, heartbeat.cells_done);
                            }
                        }
                        Err(e) => {
                            failure = Some(format!("bad telemetry record: {e}"));
                            break;
                        }
                    }
                    continue;
                }
                if let Some(s) = value.get("spans") {
                    match SpanDump::from_value(s) {
                        Ok(dump) => dump.import(&worker_label, spawn_offset),
                        Err(e) => {
                            failure = Some(format!("bad span dump: {e}"));
                            break;
                        }
                    }
                    continue;
                }
                match accept_result(stripe, &value, &emitted) {
                    Ok((index, result)) => {
                        emitted[index] = true;
                        line_observed.observe(&result);
                        emit(parent_indices[index], result);
                        if let Some(meter) = &self.progress {
                            let done = emitted.iter().filter(|&&e| e).count() as u64;
                            meter.worker_progress(&worker_label, done);
                        }
                    }
                    Err(reason) => {
                        failure = Some(reason);
                        break;
                    }
                }
            }
        }

        if failure.is_some() {
            // Stop trusting the worker entirely: kill it so a blocked writer cannot stall
            // the wait below, then re-run whatever is missing.
            let _ = child.kill();
        }
        let status = child.wait();
        // The worker is gone, so its stderr pipe has hit EOF; join to complete the tail.
        if let Some(thread) = stderr_thread {
            let _ = thread.join();
        }
        if failure.is_none() {
            // What the sentinel *claims* is irrelevant; completeness is judged by what was
            // actually verified and emitted, so an under-emitting worker with a confident
            // sentinel still triggers the re-run of its missing cells.
            match &sentinel {
                Some(_) if !emitted.iter().all(|&e| e) => {
                    failure = Some("sentinel arrived before every cell was emitted".into())
                }
                Some(value)
                    if value.get("done").and_then(Value::as_u64)
                        != Some(stripe.cells.len() as u64) =>
                {
                    failure = Some("sentinel count disagrees with the stripe".into())
                }
                Some(_) => {}
                None => failure = Some("stream ended without a sentinel".into()),
            }
        }
        if failure.is_none() {
            match status {
                Ok(status) if status.success() => {}
                Ok(status) => failure = Some(format!("worker exited with {status}")),
                Err(e) => failure = Some(format!("cannot wait for worker: {e}")),
            }
        }

        match failure {
            None => {
                // Fully trusted stream: merge the worker's observation sums home.
                if let Some(observations) = sentinel
                    .as_ref()
                    .and_then(|v| v.get("observations"))
                    .map(observations_from_value)
                {
                    let mut observed = self.observed.lock().expect("cost observations poisoned");
                    for (problem, family, obs, pred) in observations.unwrap_or_default() {
                        observed.observe_group(&problem, &family, obs, pred);
                    }
                }
                Ok(())
            }
            Some(mut reason) => {
                // The sentinel's sums are gone with the worker, but the verified cells
                // stand in the report — so their line-observed calibration stands too (the
                // fallback separately observes whatever it re-runs).
                self.observed.lock().expect("cost observations poisoned").merge(&line_observed);
                let tail = stderr_tail.lock().expect("stderr tail poisoned");
                if !tail.is_empty() {
                    reason.push_str("; last stderr: ");
                    reason.push_str(&tail.iter().cloned().collect::<Vec<_>>().join(" | "));
                }
                let missing: Vec<usize> =
                    (0..stripe.cells.len()).filter(|&i| !emitted[i]).collect();
                Err((missing, reason))
            }
        }
    }
}

impl ExecBackend for ProcessBackend {
    fn name(&self) -> &'static str {
        "process"
    }

    fn parallelism(&self) -> usize {
        self.workers
    }

    fn run_shard(&self, shard: &CellShard, emit: &EmitFn) {
        if shard.cells.is_empty() {
            return;
        }
        let stripes = shard.stripe(self.workers);
        std::thread::scope(|scope| {
            for (worker, (stripe, parent_indices)) in stripes.iter().enumerate() {
                scope.spawn(move || {
                    if let Err((missing, reason)) =
                        self.run_stripe(worker, stripe, parent_indices, emit)
                    {
                        eprintln!(
                            "sweep process backend: worker failed ({reason}); re-running {} \
                             cells in-process",
                            missing.len()
                        );
                        let rescue = CellShard {
                            base_seed: stripe.base_seed,
                            code_version: stripe.code_version.clone(),
                            cells: missing.iter().map(|&i| stripe.cells[i].clone()).collect(),
                        };
                        let fallback = InProcessBackend::new(self.worker_threads);
                        fallback.run_shard(&rescue, &|k, result| {
                            emit(parent_indices[missing[k]], result);
                        });
                        self.observed
                            .lock()
                            .expect("cost observations poisoned")
                            .merge(&fallback.calibration());
                    }
                });
            }
        });
    }

    fn calibration(&self) -> CostModel {
        let mut out = CostModel::new();
        out.merge(&self.observed.lock().expect("cost observations poisoned"));
        out
    }
}

/// Validates one worker result line against the stripe: the claimed index must be fresh and
/// in range, and the result must describe exactly the cell at that index — including the
/// derived execution seed, so a worker computing with a different base seed (or a corrupted
/// line that still parses) can never smuggle a wrong result into the report.
fn accept_result(
    stripe: &CellShard,
    value: &Value,
    emitted: &[bool],
) -> Result<(usize, CellResult), String> {
    let index = value
        .get("index")
        .and_then(Value::as_u64)
        .ok_or_else(|| "result line without an index".to_string())?;
    let index = usize::try_from(index).map_err(|_| format!("index {index} overflows"))?;
    if index >= stripe.cells.len() {
        return Err(format!("index {index} out of range for a {}-cell stripe", stripe.cells.len()));
    }
    if emitted[index] {
        return Err(format!("index {index} emitted twice"));
    }
    let result = value
        .get("cell")
        .ok_or_else(|| "result line without a cell".to_string())
        .and_then(CellResult::from_value)?;
    let expected = &stripe.cells[index];
    if result.problem != expected.problem.name()
        || result.family != expected.family.name()
        || result.requested_n != expected.n
        || result.replicate != expected.replicate
        || result.seed != expected.cell_seed(stripe.base_seed)
    {
        return Err(format!(
            "result at index {index} does not match cell {} (claimed {}/{}/n{}/r{} seed {})",
            expected.label(),
            result.problem,
            result.family,
            result.requested_n,
            result.replicate,
            result.seed
        ));
    }
    Ok((index, result))
}

/// Serves one worker invocation: parse the shard on `input`, execute it with an
/// [`InProcessBackend`], and stream result lines plus the observation-carrying sentinel to
/// `out`. This *is* `sweep --worker`; it lives here so both sides of the protocol share one
/// module. Errors (bad shard, version skew) are returned for the binary to print and turn
/// into a nonzero exit, which the parent detects as a shard failure.
///
/// `telemetry_ms` is the parent's `--telemetry` request: `Some(interval)` turns the obs
/// layer on for the stripe and adds heartbeat records every `interval` milliseconds plus a
/// final span dump before the sentinel; `None` (old parents, plain invocations) produces
/// exactly the pre-telemetry stream.
pub fn worker_serve(
    input: &str,
    threads: usize,
    telemetry_ms: Option<u64>,
    out: &mut (impl Write + Send),
) -> Result<(), String> {
    let shard = CellShard::from_value(
        &serde_json::from_str(input).map_err(|e| format!("unreadable shard: {e}"))?,
    )
    .map_err(|e| format!("malformed shard: {e}"))?;
    if shard.code_version != crate::cache::CODE_VERSION {
        return Err(format!(
            "code-version skew: shard was built by {:?}, this worker is {:?}",
            shard.code_version,
            crate::cache::CODE_VERSION
        ));
    }
    if telemetry_ms.is_some() {
        local_obs::enable();
    }
    let started = std::time::Instant::now();
    let backend = InProcessBackend::new(threads);
    let sink = Mutex::new(&mut *out);
    let cells_done = std::sync::atomic::AtomicU64::new(0);
    let heartbeat = || {
        let record = WorkerTelemetry {
            cells_done: cells_done.load(std::sync::atomic::Ordering::Relaxed),
            wall_micros: started.elapsed().as_micros() as u64,
            counters: local_obs::counter_totals(),
        };
        let line = Raw(Value::Map(vec![("telemetry".into(), record.to_value())]));
        let text = serde_json::to_string(&line).expect("telemetry line serializes");
        // Best-effort: a heartbeat the parent never reads must not fail the stripe.
        let mut sink = sink.lock().expect("worker stdout poisoned");
        let _ = writeln!(sink, "{text}");
        let _ = sink.flush();
    };
    let mut write_error = None;
    {
        let write_error = Mutex::new(&mut write_error);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            if let Some(interval_ms) = telemetry_ms {
                let stop = &stop;
                let heartbeat = &heartbeat;
                scope.spawn(move || {
                    // Sleep in short slices so the beater notices `stop` promptly even
                    // under long heartbeat intervals.
                    let slice = std::time::Duration::from_millis(interval_ms.clamp(1, 50));
                    let mut elapsed_ms = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        std::thread::sleep(slice);
                        elapsed_ms += slice.as_millis() as u64;
                        if elapsed_ms >= interval_ms {
                            elapsed_ms = 0;
                            heartbeat();
                        }
                    }
                });
            }
            backend.run_shard(&shard, &|index, result| {
                let line = Raw(Value::Map(vec![
                    ("index".into(), Value::U64(index as u64)),
                    ("cell".into(), result.to_value()),
                ]));
                let text = serde_json::to_string(&line).expect("result line serializes");
                cells_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let mut sink = sink.lock().expect("worker stdout poisoned");
                if let Err(e) = writeln!(sink, "{text}") {
                    write_error.lock().expect("error slot poisoned").get_or_insert(e.to_string());
                }
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    }
    if let Some(e) = write_error {
        return Err(format!("cannot write results: {e}"));
    }
    if telemetry_ms.is_some() {
        // One guaranteed final heartbeat (fast stripes may outrun the interval), then the
        // span dump — both before the sentinel, which stays the stream terminator.
        heartbeat();
        let dump = SpanDump::from_snapshot(&local_obs::snapshot());
        let line = Raw(Value::Map(vec![("spans".into(), dump.to_value())]));
        let text = serde_json::to_string(&line).expect("span dump serializes");
        let mut sink = sink.lock().expect("worker stdout poisoned");
        writeln!(sink, "{text}").map_err(|e| format!("cannot write span dump: {e}"))?;
    }
    let sentinel = Raw(Value::Map(vec![
        ("done".into(), Value::U64(shard.cells.len() as u64)),
        ("observations".into(), observations_to_value(&backend.calibration().observations())),
    ]));
    let text = serde_json::to_string(&sentinel).expect("sentinel serializes");
    let mut sink = sink.lock().expect("worker stdout poisoned");
    writeln!(sink, "{text}").map_err(|e| format!("cannot write sentinel: {e}"))?;
    sink.flush().map_err(|e| format!("cannot flush results: {e}"))
}

/// Renders calibration observation sums for the sentinel line.
fn observations_to_value(observations: &[(String, String, f64, f64)]) -> Value {
    Value::Seq(
        observations
            .iter()
            .map(|(problem, family, observed, predicted)| {
                Value::Seq(vec![
                    Value::Str(problem.clone()),
                    Value::Str(family.clone()),
                    Value::F64(*observed),
                    Value::F64(*predicted),
                ])
            })
            .collect(),
    )
}

/// Parses the sentinel's observation sums; shape errors discard the calibration only (the
/// results themselves were verified line by line).
fn observations_from_value(value: &Value) -> Result<Vec<(String, String, f64, f64)>, String> {
    value
        .as_seq()
        .ok_or_else(|| "observations are not a sequence".to_string())?
        .iter()
        .map(|entry| match entry.as_seq() {
            Some([problem, family, observed, predicted]) => Ok((
                String::from_value(problem)?,
                String::from_value(family)?,
                f64::from_value(observed)?,
                f64::from_value(predicted)?,
            )),
            _ => Err("observation entry is not a 4-tuple".to_string()),
        })
        .collect()
}

/// Adapter rendering a raw [`Value`] through the serde stub (which serializes `Serialize`
/// types, not `Value`s directly).
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use crate::scenario::Scenario;
    use local_graphs::Family;

    fn small_shard() -> CellShard {
        CellShard::new(
            3,
            vec![
                Scenario {
                    problem: workload("luby-mis"),
                    family: Family::SparseGnp.into(),
                    n: 32,
                    replicate: 0,
                },
                Scenario {
                    problem: workload("luby-mis"),
                    family: Family::SparseGnp.into(),
                    n: 32,
                    replicate: 1,
                },
            ],
        )
    }

    #[test]
    fn worker_serve_round_trips_through_the_stream_format() {
        let shard = small_shard();
        let mut out = Vec::new();
        worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), shard.cells.len() + 1, "cells + sentinel");

        let mut emitted = vec![false; shard.cells.len()];
        for line in &lines[..shard.cells.len()] {
            let value = serde_json::from_str(line).unwrap();
            let (index, result) = accept_result(&shard, &value, &emitted).unwrap();
            emitted[index] = true;
            assert_eq!(result.seed, shard.cells[index].cell_seed(shard.base_seed));
        }
        let sentinel = serde_json::from_str(lines.last().unwrap()).unwrap();
        assert_eq!(sentinel.get("done").and_then(Value::as_u64), Some(2));
        let observations = observations_from_value(sentinel.get("observations").unwrap()).unwrap();
        assert!(observations
            .iter()
            .any(|(p, f, _, _)| p == "luby-mis" && f == Family::SparseGnp.name()));
    }

    #[test]
    fn worker_serve_rejects_code_version_skew() {
        let mut shard = small_shard();
        shard.code_version = "some-stale-build".into();
        let mut out = Vec::new();
        let err =
            worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &mut out).unwrap_err();
        assert!(err.contains("code-version skew"), "{err}");
        assert!(out.is_empty(), "a refused shard must produce no results");
    }

    #[test]
    fn accept_result_rejects_foreign_and_duplicate_cells() {
        let shard = small_shard();
        let mut out = Vec::new();
        worker_serve(&serde_json::to_string(&shard).unwrap(), 1, None, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let first = serde_json::from_str(text.lines().next().unwrap()).unwrap();

        let fresh = vec![false; shard.cells.len()];
        let (index, _) = accept_result(&shard, &first, &fresh).unwrap();
        let mut seen = fresh.clone();
        seen[index] = true;
        assert!(accept_result(&shard, &first, &seen).unwrap_err().contains("twice"));

        // The same line against a shard with a different base seed: the derived execution
        // seed no longer matches, so the result is refused.
        let mut reseeded = shard.clone();
        reseeded.base_seed = 4;
        assert!(accept_result(&reseeded, &first, &fresh).unwrap_err().contains("does not match"));
    }

    #[test]
    fn observation_wire_format_round_trips() {
        let observations = vec![
            ("mis".to_string(), "grid".to_string(), 1234.5, 678.0),
            ("coloring".to_string(), "path".to_string(), 9.0, 4.5),
        ];
        let value = observations_to_value(&observations);
        assert_eq!(observations_from_value(&value).unwrap(), observations);
    }
}

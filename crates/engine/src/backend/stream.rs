//! Shared consumption of a worker's result stream.
//!
//! Both distributed backends — [`super::ProcessBackend`] over pipes and
//! [`super::NetworkBackend`] over TCP — receive the same newline-delimited protocol:
//! `{"index", "cell"}` result lines, optional `{"telemetry"}` heartbeats and one
//! `{"spans"}` dump, terminated by a `{"done", "observations"}` sentinel. This module owns
//! the verification state machine for one stripe of that stream, so the trust rules
//! (per-line identity checks, duplicate-index rejection, sentinel completeness) cannot
//! drift between transports.

use super::telemetry::{SpanDump, WorkerTelemetry};
use super::CellShard;
use crate::cost::CostModel;
use crate::progress::ProgressMeter;
use crate::report::CellResult;
use serde::{Deserialize, Value};

/// What one consumed line meant for the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LineOutcome {
    /// A result, heartbeat, or span dump: keep reading.
    Progress,
    /// The sentinel: the stream is over, check completion next.
    Finished,
}

/// Verification state for one stripe's stream: which cells were verified and emitted, the
/// per-line calibration shadow, and the sentinel once it arrives.
pub(crate) struct StripeStream<'a> {
    stripe: &'a CellShard,
    worker_label: String,
    spawn_offset_micros: u64,
    emitted: Vec<bool>,
    /// Calibration observed alongside acceptance, so verified cells still calibrate the
    /// model when the worker later fails and its sentinel never arrives.
    pub line_observed: CostModel,
    sentinel: Option<Value>,
}

impl<'a> StripeStream<'a> {
    /// A fresh verifier for `stripe`. `spawn_offset_micros` is the coordinator-side time
    /// the worker started (spawn or connect), used to rebase an imported span dump.
    pub fn new(stripe: &'a CellShard, worker_label: String, spawn_offset_micros: u64) -> Self {
        StripeStream {
            emitted: vec![false; stripe.cells.len()],
            stripe,
            worker_label,
            spawn_offset_micros,
            line_observed: CostModel::new(),
            sentinel: None,
        }
    }

    /// Consumes one line of the stream. Verified results are handed to `accept` with their
    /// stripe index; heartbeats update `progress`; a span dump is imported into the obs
    /// layer. Any line that cannot be fully trusted is an error — the caller must stop
    /// trusting the stream on the spot.
    pub fn consume(
        &mut self,
        line: &str,
        progress: Option<&ProgressMeter>,
        accept: &mut dyn FnMut(usize, CellResult),
    ) -> Result<LineOutcome, String> {
        let value = serde_json::from_str(line).map_err(|e| format!("garbage on stream: {e}"))?;
        if value.get("done").is_some() {
            self.sentinel = Some(value);
            return Ok(LineOutcome::Finished);
        }
        // A daemon that cannot serve a request says so explicitly before hanging up.
        if let Some(message) = value.get("error") {
            return Err(match message {
                Value::Str(text) => format!("worker reported: {text}"),
                other => format!("worker reported an error: {other:?}"),
            });
        }
        // Telemetry record kinds (only present when the parent asked for them). A record
        // that *claims* a kind but does not parse is treated like any other garbage.
        if let Some(t) = value.get("telemetry") {
            let heartbeat =
                WorkerTelemetry::from_value(t).map_err(|e| format!("bad telemetry record: {e}"))?;
            if let Some(meter) = progress {
                meter.worker_progress(&self.worker_label, heartbeat.cells_done);
            }
            return Ok(LineOutcome::Progress);
        }
        if let Some(s) = value.get("spans") {
            let dump = SpanDump::from_value(s).map_err(|e| format!("bad span dump: {e}"))?;
            dump.import(&self.worker_label, self.spawn_offset_micros);
            return Ok(LineOutcome::Progress);
        }
        let (index, result) = accept_result(self.stripe, &value, &self.emitted)?;
        self.emitted[index] = true;
        self.line_observed.observe(&result);
        accept(index, result);
        if let Some(meter) = progress {
            meter.worker_progress(&self.worker_label, self.done_count());
        }
        Ok(LineOutcome::Progress)
    }

    /// How many cells of the stripe were verified and emitted so far.
    pub fn done_count(&self) -> u64 {
        self.emitted.iter().filter(|&&e| e).count() as u64
    }

    /// The stripe indices still without a verified result.
    pub fn missing(&self) -> Vec<usize> {
        (0..self.stripe.cells.len()).filter(|&i| !self.emitted[i]).collect()
    }

    /// The sentinel observation sums, when a trusted sentinel carried them.
    pub fn sentinel_observations(&self) -> Option<&Value> {
        self.sentinel.as_ref().and_then(|v| v.get("observations"))
    }

    /// Judges completion after the stream ended. What the sentinel *claims* is irrelevant;
    /// completeness is judged by what was actually verified and emitted, so an
    /// under-emitting worker with a confident sentinel still triggers the re-run of its
    /// missing cells.
    pub fn verify_completion(&self) -> Result<(), String> {
        match &self.sentinel {
            Some(_) if !self.emitted.iter().all(|&e| e) => {
                Err("sentinel arrived before every cell was emitted".into())
            }
            Some(value)
                if value.get("done").and_then(Value::as_u64)
                    != Some(self.stripe.cells.len() as u64) =>
            {
                Err("sentinel count disagrees with the stripe".into())
            }
            Some(_) => Ok(()),
            None => Err("stream ended without a sentinel".into()),
        }
    }
}

/// Validates one worker result line against the stripe: the claimed index must be fresh and
/// in range, and the result must describe exactly the cell at that index — including the
/// derived execution seed, so a worker computing with a different base seed (or a corrupted
/// line that still parses) can never smuggle a wrong result into the report.
pub(crate) fn accept_result(
    stripe: &CellShard,
    value: &Value,
    emitted: &[bool],
) -> Result<(usize, CellResult), String> {
    let index = value
        .get("index")
        .and_then(Value::as_u64)
        .ok_or_else(|| "result line without an index".to_string())?;
    let index = usize::try_from(index).map_err(|_| format!("index {index} overflows"))?;
    if index >= stripe.cells.len() {
        return Err(format!("index {index} out of range for a {}-cell stripe", stripe.cells.len()));
    }
    if emitted[index] {
        return Err(format!("index {index} emitted twice"));
    }
    let result = value
        .get("cell")
        .ok_or_else(|| "result line without a cell".to_string())
        .and_then(CellResult::from_value)?;
    let expected = &stripe.cells[index];
    if result.problem != expected.problem.name()
        || result.family != expected.family.name()
        || result.requested_n != expected.n
        || result.replicate != expected.replicate
        || result.seed != expected.cell_seed(stripe.base_seed)
    {
        return Err(format!(
            "result at index {index} does not match cell {} (claimed {}/{}/n{}/r{} seed {})",
            expected.label(),
            result.problem,
            result.family,
            result.requested_n,
            result.replicate,
            result.seed
        ));
    }
    Ok((index, result))
}

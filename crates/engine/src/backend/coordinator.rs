//! The sweep coordinator: many clients, one daemon fleet, fair shared scheduling.
//!
//! `sweep --coordinate ADDR` runs a [`CoordinatorServer`]: a TCP service that accepts any
//! number of concurrent client connections, each submitting *jobs* — one JSON line per job,
//! either `{"shard": <CellShard>, …}` (what [`CoordinatorBackend`] ships) or
//! `{"grid": <ScenarioGrid>, …}` (for hand-written clients; the grid is expanded in its
//! canonical cell order), optionally carrying `"telemetry": <ms>` and a `"client": <name>`
//! for accounting. The coordinator decomposes each job into instance-grouped stripes
//! ([`CellShard::stripe`]), schedules the stripes over its `--connect` daemon fleet with a
//! deficit-round-robin policy that is fair *by predicted cost* between clients
//! ([`local_coord::FairScheduler`]) and longest-processing-time-first within a job, and
//! streams verified results back to each client in exactly the daemon wire protocol —
//! result lines, optional heartbeats, an observation-carrying sentinel — so a client
//! cannot tell a coordinator from a daemon.
//!
//! # The determinism and loss contracts
//!
//! Every result line a daemon sends is verified against the submitted cells by the same
//! [`super::stream::StripeStream`] state machine the network backend uses, and every cell
//! seed is a pure function of the cell's identity — so a sweep submitted through the
//! coordinator is byte-identical (deterministic view) to the same sweep run in-process, no
//! matter how stripes interleave over the fleet. When a daemon dies mid-stripe its
//! verified cells stand, the remainder is re-queued for the surviving fleet (tasks
//! remember which peers already failed them), and whatever no live peer can serve is
//! rescued in-process by the coordinator itself — per job, `verified + rescued == cells`,
//! checked and printed on every job completion and booked per client in a
//! [`local_coord::ClientLedger`].

use super::network::NetworkBackend;
use super::process::observations_to_value;
use super::telemetry::WorkerTelemetry;
use super::{rescue_missing, CellShard, EmitFn, ExecBackend, FaultPlan};
use crate::cost::CostModel;
use crate::progress::ProgressMeter;
use crate::report::CellResult;
use crate::scenario::{Scenario, ScenarioGrid};
use crate::store::ResultStore;
use local_coord::{ClientLedger, FairScheduler, JobStats, TaskEntry, MAX_PEERS};
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// How a [`CoordinatorServer`] talks to its fleet and degrades when the fleet shrinks.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Daemon addresses (`host:port`) forming the fleet. May be empty — every job is then
    /// rescued in-process, which is slow but lossless.
    pub fleet: Vec<String>,
    /// Threads for the in-process rescue path (`0` = available parallelism).
    pub rescue_threads: usize,
    /// I/O liveness deadline towards the fleet, in milliseconds.
    pub io_deadline_ms: u64,
    /// Per-attempt connect timeout towards the fleet, in milliseconds.
    pub connect_timeout_ms: u64,
    /// Reconnect backoff base, in milliseconds.
    pub retry_base_ms: u64,
    /// Reconnect backoff cap, in milliseconds.
    pub retry_cap_ms: u64,
    /// Connect attempts per dispatch before a peer is declared dead.
    pub max_connect_attempts: u32,
    /// Stripes each job is split into, per fleet peer (finer stripes interleave clients
    /// more fairly; coarser stripes amortize dispatch overhead).
    pub stripes_per_peer: usize,
    /// Coordinator-side fault plan (`refuse*N` clauses towards the fleet).
    pub faults: FaultPlan,
    /// Shared result store. When set, every job is probed before striping — stored cells
    /// are streamed back immediately without touching the fleet — and every freshly
    /// computed cell (verified or rescued) is written back, so the whole fleet's work
    /// accumulates under one coordinator-side store.
    pub store: Option<Arc<dyn ResultStore>>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            fleet: Vec::new(),
            rescue_threads: 0,
            io_deadline_ms: 600_000,
            connect_timeout_ms: 5_000,
            retry_base_ms: 100,
            retry_cap_ms: 5_000,
            max_connect_attempts: 5,
            stripes_per_peer: 4,
            faults: FaultPlan::default(),
            store: None,
        }
    }
}

/// The writeback half of a job's store attachment: the store handle plus the submitted
/// cells by wire index, so [`CoordJob::deliver`] can persist fresh results.
struct JobPersist {
    store: Arc<dyn ResultStore>,
    base_seed: u64,
    cells: Vec<Scenario>,
}

/// One client job in flight: the submitted cells, the socket to stream results back on,
/// and the exact-accounting state that must reconcile when the last cell lands.
struct CoordJob {
    client: String,
    seq: u64,
    cells: usize,
    writer: Arc<Mutex<TcpStream>>,
    telemetry_ms: Option<u64>,
    accepted_micros: u64,
    remaining: AtomicUsize,
    verified: AtomicU64,
    rescued: AtomicU64,
    assigned: AtomicU64,
    redispatched: AtomicU64,
    queue_wait: AtomicU64,
    /// Per-job calibration observed from verified and rescued cells, shipped home in the
    /// sentinel exactly like a daemon's.
    observed: Mutex<CostModel>,
    /// Store writeback attachment (`None` when the coordinator runs storeless).
    persist: Option<JobPersist>,
    /// The client's socket broke: stop writing, keep accounting, never block the fleet.
    failed: AtomicBool,
    done: (Mutex<bool>, Condvar),
}

impl CoordJob {
    /// Streams one verified, rescued, or store-served cell back to the client and books
    /// it. `fresh` marks a result computed during this job (fleet-verified or rescued, as
    /// opposed to replayed from the store) — fresh cells are written back to the store so
    /// the fleet's work accumulates. The caller that drops `remaining` to zero finalizes
    /// the job.
    fn deliver(
        &self,
        state: &ServerState,
        wire: usize,
        result: CellResult,
        rescued: bool,
        fresh: bool,
    ) {
        if fresh {
            if let Some(persist) = &self.persist {
                if let Err(e) =
                    persist.store.store(&persist.cells[wire], persist.base_seed, &result)
                {
                    eprintln!(
                        "coord: cannot store cell {} of client {} job {}: {e}",
                        persist.cells[wire].label(),
                        self.client,
                        self.seq
                    );
                }
            }
        }
        if !self.failed.load(Ordering::Relaxed) {
            let line = Raw(Value::Map(vec![
                ("index".into(), Value::U64(wire as u64)),
                ("cell".into(), result.to_value()),
            ]));
            let text = serde_json::to_string(&line).expect("result line serializes");
            let mut writer = self.writer.lock().expect("client writer poisoned");
            if let Err(e) = writeln!(writer, "{text}") {
                drop(writer);
                self.failed.store(true, Ordering::Relaxed);
                eprintln!(
                    "coord: client {} job {} went away mid-stream ({e}); draining its cells",
                    self.client, self.seq
                );
            }
        }
        if rescued {
            self.rescued.fetch_add(1, Ordering::Relaxed);
        } else {
            self.verified.fetch_add(1, Ordering::Relaxed);
            local_obs::counter_add(local_obs::metrics::COORD_CELLS_VERIFIED, 1);
            // Rescued cells calibrate through the rescue backend's own merge; verified
            // cells calibrate here, from the verified line itself.
            self.observed.lock().expect("job calibration poisoned").observe(&result);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.finalize(state);
        }
    }

    /// Accounts for `n` cells that will never be delivered (their job already lost its
    /// client), so the job still finalizes and frees its slot.
    fn skip(&self, state: &ServerState, n: usize) {
        if n > 0 && self.remaining.fetch_sub(n, Ordering::AcqRel) == n {
            self.finalize(state);
        }
    }

    /// Terminates the job: sentinel to the client, accounting line to stdout, ledger row,
    /// and the done signal that lets the session read its next job.
    fn finalize(&self, state: &ServerState) {
        let stats = JobStats {
            cells: self.cells as u64,
            verified: self.verified.load(Ordering::Relaxed),
            rescued: self.rescued.load(Ordering::Relaxed),
            assigned: self.assigned.load(Ordering::Relaxed),
            redispatched: self.redispatched.load(Ordering::Relaxed),
            queue_wait_micros: self.queue_wait.load(Ordering::Relaxed),
        };
        if !self.failed.load(Ordering::Relaxed) {
            let observations = {
                let observed = self.observed.lock().expect("job calibration poisoned");
                observations_to_value(&observed.observations())
            };
            let sentinel = Raw(Value::Map(vec![
                ("done".into(), Value::U64(self.cells as u64)),
                ("observations".into(), observations),
                (
                    "stats".into(),
                    Value::Map(vec![
                        ("verified".into(), Value::U64(stats.verified)),
                        ("rescued".into(), Value::U64(stats.rescued)),
                        ("assigned".into(), Value::U64(stats.assigned)),
                        ("redispatched".into(), Value::U64(stats.redispatched)),
                        ("queue_wait_micros".into(), Value::U64(stats.queue_wait_micros)),
                    ]),
                ),
            ]));
            let text = serde_json::to_string(&sentinel).expect("sentinel serializes");
            let mut writer = self.writer.lock().expect("client writer poisoned");
            if let Err(e) = writeln!(writer, "{text}").and_then(|_| writer.flush()) {
                eprintln!(
                    "coord: client {} job {}: cannot write the sentinel: {e}",
                    self.client, self.seq
                );
            }
        }
        let label = local_obs::label(&format!("client {}", self.client));
        local_obs::record(local_obs::metrics::COORD_CELLS_VERIFIED, label, stats.verified);
        local_obs::record(local_obs::metrics::COORD_CELLS_ASSIGNED, label, stats.assigned);
        local_obs::record(
            local_obs::metrics::COORD_QUEUE_WAIT_MICROS,
            label,
            stats.queue_wait_micros,
        );
        state.ledger.lock().expect("ledger poisoned").job_completed(&self.client, &stats);
        println!(
            "coord: client {} job {} done: cells {} = verified {} + rescued {}; assigned {}; \
             redispatched {}; queue-wait {} us",
            self.client,
            self.seq,
            stats.cells,
            stats.verified,
            stats.rescued,
            stats.assigned,
            stats.redispatched,
            stats.queue_wait_micros
        );
        if !stats.reconciles() && !self.failed.load(Ordering::Relaxed) {
            println!(
                "coord: ACCOUNTING MISMATCH for client {} job {}: verified {} + rescued {} != \
                 cells {}",
                self.client, self.seq, stats.verified, stats.rescued, stats.cells
            );
        }
        let _ = std::io::stdout().flush();
        state.active_jobs.fetch_sub(1, Ordering::Relaxed);
        let mut done = self.done.0.lock().expect("done flag poisoned");
        *done = true;
        self.done.1.notify_all();
    }
}

/// One stripe of one job, queued for the fleet.
struct StripeTask {
    job: Arc<CoordJob>,
    stripe: CellShard,
    /// Wire index (position in the submitted job) of each stripe cell.
    parents: Vec<usize>,
    enqueued_micros: u64,
}

struct ServerState {
    config: CoordinatorConfig,
    /// The fleet transport: connect/retry/verify machinery shared with `--backend network`.
    backend: NetworkBackend,
    scheduler: FairScheduler<StripeTask>,
    ledger: Mutex<ClientLedger>,
    busy_peers: AtomicU64,
    active_jobs: AtomicU64,
    job_seq: AtomicU64,
}

/// The `sweep --coordinate` service: accepts client job submissions and multiplexes them
/// onto a daemon fleet. See the [module docs](self) for the protocol and the contracts.
pub struct CoordinatorServer {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl CoordinatorServer {
    /// Binds the coordinator on `addr` with the given fleet configuration.
    pub fn bind(addr: &str, config: CoordinatorConfig) -> Result<Self, String> {
        if config.fleet.len() > MAX_PEERS {
            return Err(format!(
                "fleet of {} peers exceeds the {MAX_PEERS}-peer cap",
                config.fleet.len()
            ));
        }
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        let backend = NetworkBackend::new(config.fleet.clone())
            .rescue_threads(config.rescue_threads)
            .io_deadline_ms(config.io_deadline_ms)
            .connect_timeout_ms(config.connect_timeout_ms)
            .retry(config.retry_base_ms, config.retry_cap_ms, config.max_connect_attempts)
            .faults(config.faults.clone());
        let scheduler = FairScheduler::new(config.fleet.len());
        Ok(CoordinatorServer {
            listener,
            state: Arc::new(ServerState {
                backend,
                scheduler,
                ledger: Mutex::new(ClientLedger::new()),
                busy_peers: AtomicU64::new(0),
                active_jobs: AtomicU64::new(0),
                job_seq: AtomicU64::new(0),
                config,
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| format!("cannot read bound address: {e}"))
    }

    /// Serves forever: one fleet-worker thread per peer, one session thread per client
    /// connection. Only returns if the listener breaks.
    pub fn run(self) -> Result<(), String> {
        for peer in 0..self.state.config.fleet.len() {
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || fleet_worker(&state, peer));
        }
        for conn in self.listener.incoming() {
            match conn {
                Ok(stream) => {
                    let state = Arc::clone(&self.state);
                    std::thread::spawn(move || client_session(stream, &state));
                }
                Err(e) => eprintln!("coord: accept failed: {e}"),
            }
        }
        Ok(())
    }
}

/// Runs `sweep --coordinate`: binds `addr`, announces `listening on <addr>` on stdout, and
/// coordinates forever.
pub fn coordinate_forever(addr: &str, config: CoordinatorConfig) -> Result<(), String> {
    let server = CoordinatorServer::bind(addr, config)?;
    println!("listening on {}", server.local_addr()?);
    let _ = std::io::stdout().flush();
    server.run()
}

/// One fleet peer's dispatch loop: pull the next fairly-scheduled stripe, run it on the
/// peer through the network backend's verify machinery, and on failure re-queue the
/// remainder for the surviving fleet (rescuing in-process whatever no live peer can take).
/// A peer whose dispatch fails is retired for the coordinator's lifetime — the network
/// backend has already burned the full reconnect budget by the time it reports failure.
fn fleet_worker(state: &ServerState, peer: usize) {
    while let Some(task) = state.scheduler.next(peer) {
        let entry_attempted = task.attempted;
        let task = task.payload;
        let job = Arc::clone(&task.job);
        let wait = local_obs::now_micros().saturating_sub(task.enqueued_micros);
        job.queue_wait.fetch_add(wait, Ordering::Relaxed);
        local_obs::counter_add(local_obs::metrics::COORD_QUEUE_WAIT_MICROS, wait);
        if job.failed.load(Ordering::Relaxed) {
            job.skip(state, task.stripe.cells.len());
            continue;
        }
        job.assigned.fetch_add(task.stripe.cells.len() as u64, Ordering::Relaxed);
        local_obs::counter_add(
            local_obs::metrics::COORD_CELLS_ASSIGNED,
            task.stripe.cells.len() as u64,
        );
        let busy = state.busy_peers.fetch_add(1, Ordering::Relaxed) + 1;
        local_obs::gauge_max(local_obs::metrics::COORD_FLEET_BUSY, busy);
        let redispatch = entry_attempted != 0;
        let emit = |wire: usize, result: CellResult| {
            if redispatch {
                job.redispatched.fetch_add(1, Ordering::Relaxed);
            }
            job.deliver(state, wire, result, false, true);
        };
        let outcome = state.backend.run_stripe(peer, &task.stripe, &task.parents, &emit);
        state.busy_peers.fetch_sub(1, Ordering::Relaxed);
        let Err((missing, reason)) = outcome else { continue };
        eprintln!(
            "coord: peer {peer} ({}) failed client {} job {} ({reason}); retiring the peer \
             and re-queuing {} cells",
            state.config.fleet[peer],
            job.client,
            job.seq,
            missing.len()
        );
        // Mark the peer dead *first*, then drain + re-queue under the new fleet view, so
        // no task can be scheduled back onto the corpse in between.
        let stranded = state.scheduler.peer_down(peer);
        if !missing.is_empty() {
            let remainder = StripeTask {
                stripe: CellShard {
                    base_seed: task.stripe.base_seed,
                    code_version: task.stripe.code_version.clone(),
                    cells: missing.iter().map(|&i| task.stripe.cells[i].clone()).collect(),
                },
                parents: missing.iter().map(|&i| task.parents[i]).collect(),
                enqueued_micros: local_obs::now_micros(),
                job: Arc::clone(&job),
            };
            let mut entry = entry_of(remainder);
            entry.attempted = entry_attempted;
            entry.mark_attempted(peer);
            if let Err(entry) = state.scheduler.requeue(entry) {
                rescue_task(state, entry.payload);
            }
        }
        for entry in stranded {
            rescue_task(state, entry.payload);
        }
        break;
    }
}

/// Wraps a stripe task for the scheduler, costed by the default model's predictions.
fn entry_of(task: StripeTask) -> TaskEntry<StripeTask> {
    let model = CostModel::new();
    let cost: f64 = task.stripe.cells.iter().map(|cell| model.predict(cell).max(1.0)).sum();
    let client = task.job.client.clone();
    TaskEntry::new(task, client, cost)
}

/// Recomputes a stripe in the coordinator's own process — the lossless path of last
/// resort, shared with every other backend via [`rescue_missing`].
fn rescue_task(state: &ServerState, task: StripeTask) {
    let job = Arc::clone(&task.job);
    if job.failed.load(Ordering::Relaxed) {
        job.skip(state, task.stripe.cells.len());
        return;
    }
    let all: Vec<usize> = (0..task.stripe.cells.len()).collect();
    rescue_missing(&task.stripe, &all, state.config.rescue_threads, &job.observed, &|k, result| {
        job.deliver(state, task.parents[k], result, true, true)
    });
}

/// One client connection: job lines in, result streams out, one job in flight at a time
/// (results of concurrent jobs on one socket would interleave unparseably — clients
/// wanting parallel jobs open parallel connections, like [`CoordinatorBackend`] does).
fn client_session(stream: TcpStream, state: &ServerState) {
    let peer_name =
        stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown peer".to_string());
    let _ = stream.set_nodelay(true);
    let reader = match stream.try_clone() {
        Ok(clone) => BufReader::new(clone),
        Err(e) => {
            eprintln!("coord [{peer_name}]: cannot clone socket: {e}");
            return;
        }
    };
    let writer = Arc::new(Mutex::new(stream));
    let mut reader = reader;
    let mut line = String::new();
    let mut last_client = None;
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if let Err(e) = serve_job(line.trim(), &peer_name, &writer, state, &mut last_client)
                {
                    eprintln!("coord [{peer_name}]: {e}");
                    let reply = Raw(Value::Map(vec![("error".into(), Value::Str(e))]));
                    let text = serde_json::to_string(&reply).expect("error line serializes");
                    let mut writer = writer.lock().expect("client writer poisoned");
                    let _ = writeln!(writer, "{text}");
                    let _ = writer.flush();
                    break;
                }
            }
            Err(e) => {
                eprintln!("coord [{peer_name}]: read failed: {e}");
                break;
            }
        }
    }
    if let Some(client) = last_client {
        let ledger = state.ledger.lock().expect("ledger poisoned");
        if let Some(stats) = ledger.client(&client) {
            println!("coord: client {client} disconnected: {stats}");
            let _ = std::io::stdout().flush();
        }
    }
}

/// Parses one job line, decomposes it into LPT-ordered stripes, submits them to the fair
/// scheduler (or rescues the whole job in-process when the fleet is gone), and blocks
/// until the job's sentinel went out — keeping the client's liveness window fed with
/// heartbeats the whole time when it asked for telemetry.
fn serve_job(
    request: &str,
    peer_name: &str,
    writer: &Arc<Mutex<TcpStream>>,
    state: &ServerState,
    last_client: &mut Option<String>,
) -> Result<(), String> {
    let value = serde_json::from_str(request).map_err(|e| format!("unreadable job: {e}"))?;
    let shard = if let Some(shard) = value.get("shard") {
        CellShard::from_value(shard).map_err(|e| format!("malformed shard: {e}"))?
    } else if let Some(grid) = value.get("grid") {
        let grid = ScenarioGrid::from_value(grid).map_err(|e| format!("malformed grid: {e}"))?;
        CellShard::new(grid.base_seed, grid.cells())
    } else {
        return Err("job without a shard or a grid".to_string());
    };
    if shard.code_version != crate::cache::CODE_VERSION {
        return Err(format!(
            "code-version skew: job was built by {:?}, this coordinator is {:?}",
            shard.code_version,
            crate::cache::CODE_VERSION
        ));
    }
    let telemetry_ms = value.get("telemetry").and_then(Value::as_u64);
    let client = value
        .get("client")
        .and_then(Value::as_str)
        .map(str::to_string)
        .unwrap_or_else(|| format!("anon@{peer_name}"));
    *last_client = Some(client.clone());

    let seq = state.job_seq.fetch_add(1, Ordering::Relaxed);
    state.ledger.lock().expect("ledger poisoned").job_submitted(&client);
    local_obs::counter_add(local_obs::metrics::COORD_JOBS, 1);
    let active = state.active_jobs.fetch_add(1, Ordering::Relaxed) + 1;
    local_obs::gauge_max(local_obs::metrics::COORD_JOBS_ACTIVE, active);
    println!(
        "coord: client {client} job {seq} accepted: {} cells from {peer_name}",
        shard.cells.len()
    );
    let _ = std::io::stdout().flush();

    let job = Arc::new(CoordJob {
        client: client.clone(),
        seq,
        cells: shard.cells.len(),
        writer: Arc::clone(writer),
        telemetry_ms,
        accepted_micros: local_obs::now_micros(),
        remaining: AtomicUsize::new(shard.cells.len()),
        verified: AtomicU64::new(0),
        rescued: AtomicU64::new(0),
        assigned: AtomicU64::new(0),
        redispatched: AtomicU64::new(0),
        queue_wait: AtomicU64::new(0),
        observed: Mutex::new(CostModel::new()),
        persist: state.config.store.as_ref().map(|store| JobPersist {
            store: Arc::clone(store),
            base_seed: shard.base_seed,
            cells: shard.cells.clone(),
        }),
        failed: AtomicBool::new(false),
        done: (Mutex::new(false), Condvar::new()),
    });

    if shard.cells.is_empty() {
        // Degenerate but legal: answer immediately with an empty sentinel.
        job.finalize(state);
        return Ok(());
    }

    let heartbeat = job.telemetry_ms.map(|ms| {
        let job = Arc::clone(&job);
        std::thread::spawn(move || heartbeat_loop(&job, ms))
    });

    // Probe the shared store first: stored cells stream back immediately (booked as
    // verified — they went through full verification when first computed) and never
    // touch the fleet. Only the misses are striped.
    let mut missed: Vec<usize> = (0..shard.cells.len()).collect();
    if let Some(store) = &state.config.store {
        missed.clear();
        let mut hits = 0u64;
        for (i, cell) in shard.cells.iter().enumerate() {
            match store.load(cell, shard.base_seed) {
                Some(result) => {
                    hits += 1;
                    job.deliver(state, i, result, false, false);
                }
                None => missed.push(i),
            }
        }
        if hits > 0 {
            println!(
                "coord: client {client} job {seq}: {hits} of {} cells served from {}",
                shard.cells.len(),
                store.describe()
            );
            let _ = std::io::stdout().flush();
        }
    }

    // Decompose the missed remainder into instance-grouped stripes (empty stripes appear
    // when the job has fewer distinct instances than the target count — drop them), then
    // LPT between stripes so each client's costliest work is in flight earliest. Stripe
    // parents index the sub-shard, so remap them back to the job's wire indices.
    if !missed.is_empty() {
        let sub = CellShard {
            base_seed: shard.base_seed,
            code_version: shard.code_version.clone(),
            cells: missed.iter().map(|&i| shard.cells[i].clone()).collect(),
        };
        let target = (state.config.fleet.len() * state.config.stripes_per_peer).max(1);
        let mut entries: Vec<TaskEntry<StripeTask>> = sub
            .stripe(target)
            .into_iter()
            .filter(|(stripe, _)| !stripe.cells.is_empty())
            .map(|(stripe, parents)| {
                entry_of(StripeTask {
                    job: Arc::clone(&job),
                    stripe,
                    parents: parents.into_iter().map(|p| missed[p]).collect(),
                    enqueued_micros: local_obs::now_micros(),
                })
            })
            .collect();
        entries.sort_by(|a, b| b.cost.total_cmp(&a.cost));

        if let Err(entries) = state.scheduler.submit(entries) {
            eprintln!("coord: no live fleet peers; rescuing client {client} job {seq} in-process");
            for entry in entries {
                rescue_task(state, entry.payload);
            }
        }
    }

    // One job in flight per connection: wait for the sentinel before reading the next
    // job line.
    let (lock, cvar) = &job.done;
    let mut done = lock.lock().expect("done flag poisoned");
    while !*done {
        done = cvar.wait(done).expect("done flag poisoned");
    }
    drop(done);
    if let Some(beater) = heartbeat {
        let _ = beater.join();
    }
    if job.failed.load(Ordering::Relaxed) {
        return Err(format!("client {client} went away mid-job"));
    }
    Ok(())
}

/// Feeds a client's shrunken liveness window while its job is queued or in flight:
/// absolute progress every `interval_ms`, ending when the job finalizes.
fn heartbeat_loop(job: &CoordJob, interval_ms: u64) {
    let interval = Duration::from_millis(interval_ms.max(1));
    let (lock, cvar) = &job.done;
    loop {
        let done = lock.lock().expect("done flag poisoned");
        if *done {
            return;
        }
        let (done, timeout) = cvar.wait_timeout(done, interval).expect("done flag poisoned");
        let finished = *done;
        drop(done);
        if finished || job.failed.load(Ordering::Relaxed) {
            return;
        }
        if !timeout.timed_out() {
            continue;
        }
        let beat = WorkerTelemetry {
            cells_done: (job.cells - job.remaining.load(Ordering::Relaxed)) as u64,
            wall_micros: local_obs::now_micros().saturating_sub(job.accepted_micros),
            counters: Vec::new(),
        };
        let line = Raw(Value::Map(vec![("telemetry".into(), beat.to_value())]));
        let text = serde_json::to_string(&line).expect("heartbeat serializes");
        let mut writer = job.writer.lock().expect("client writer poisoned");
        // Best-effort: a heartbeat the client never reads must not fail the job.
        let _ = writeln!(writer, "{text}");
        let _ = writer.flush();
    }
}

/// Adapter rendering a raw [`Value`] through the serde stub.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

/// Submits sweeps to a `sweep --coordinate` service (`--submit ADDR` on the client).
///
/// A coordinator speaks the daemon wire protocol, so this is the network backend pointed
/// at a single peer — the coordinator — with every request naming its owning client for
/// the coordinator's per-client accounting. The single "peer" is the whole fleet: if the
/// coordinator itself dies mid-job, the shard is rescued in-process on the client, the
/// same lossless degradation every other backend has.
pub struct CoordinatorBackend {
    inner: NetworkBackend,
}

impl CoordinatorBackend {
    /// A backend submitting to the coordinator at `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        CoordinatorBackend { inner: NetworkBackend::new(vec![addr.into()]) }
    }

    /// Names this client in every submission (default: anonymous, named by the
    /// coordinator after the connection's source address).
    pub fn client(mut self, name: impl Into<String>) -> Self {
        self.inner = self.inner.client(name);
        self
    }

    /// Sets how many threads the in-process rescue path uses when the coordinator cannot
    /// serve the job (`0` = available parallelism).
    pub fn rescue_threads(mut self, threads: usize) -> Self {
        self.inner = self.inner.rescue_threads(threads);
        self
    }

    /// Attaches a live progress meter; the coordinator is then asked for heartbeats.
    pub fn progress(mut self, meter: ProgressMeter) -> Self {
        self.inner = self.inner.progress(meter);
        self
    }

    /// Sets the I/O liveness deadline in milliseconds.
    pub fn io_deadline_ms(mut self, ms: u64) -> Self {
        self.inner = self.inner.io_deadline_ms(ms);
        self
    }

    /// Sets the per-attempt connect timeout in milliseconds.
    pub fn connect_timeout_ms(mut self, ms: u64) -> Self {
        self.inner = self.inner.connect_timeout_ms(ms);
        self
    }

    /// Sets the reconnect policy towards the coordinator.
    pub fn retry(mut self, base_ms: u64, cap_ms: u64, attempts: u32) -> Self {
        self.inner = self.inner.retry(base_ms, cap_ms, attempts);
        self
    }

    /// Sets the deterministic fault-injection plan (connect refusals towards the
    /// coordinator).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.inner = self.inner.faults(plan);
        self
    }
}

impl ExecBackend for CoordinatorBackend {
    fn name(&self) -> &'static str {
        "coordinator"
    }

    fn parallelism(&self) -> usize {
        // The coordinator's fleet size is its business; the report's deterministic view
        // zeroes this field anyway.
        1
    }

    fn run_shard(&self, shard: &CellShard, emit: &EmitFn) {
        self.inner.run_shard(shard, emit);
    }

    fn calibration(&self) -> CostModel {
        self.inner.calibration()
    }
}

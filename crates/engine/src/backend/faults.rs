//! Deterministic fault injection for the execution backends.
//!
//! The rescue discipline — verified cells stand, the rest are re-dispatched or re-run —
//! is only trustworthy if every failure mode it claims to handle is *exercised*, not
//! asserted in comments. This module scripts failures deterministically so tests and CI
//! soak runs can kill workers at cell k, garble or duplicate stream lines, truncate
//! streams, stall I/O, and refuse connections, then byte-compare the surviving report
//! against an in-process run.
//!
//! # The `LOCAL_FAULTS` script
//!
//! A script is a whitespace- (or `;`-) separated list of clauses:
//!
//! ```text
//! kill@K          exit(1) right before emitting result line K (0-based, process-cumulative)
//! truncate@K      flush what was written, then exit(0) before result K — a clean stream
//!                 that simply ends without a sentinel
//! garble@K        insert one deterministic non-protocol line before result K, then continue
//! dup@K           emit result line K twice (a repeated index the parent must reject)
//! delay@K=MS      sleep MS milliseconds before emitting result K (exercises read deadlines)
//! refuse*N        parent-side: fail the first N connect/spawn attempts to the worker
//! ```
//!
//! A clause may be scoped to one worker of a fleet with a `w<i>:` prefix (`w1:kill@3`).
//! Scoping is resolved by whichever process *parses* the script: a coordinator keeps
//! `refuse` clauses for itself and forwards the rest of worker i's clauses — unscoped —
//! to that worker's environment; a worker or `--serve` daemon applies every unscoped
//! clause to its own result stream. Result indices count the process's *emission order*
//! cumulatively across served shards, so "kill@5" on a daemon means "die after serving 5
//! cells, whichever request they belong to".
//!
//! Every fired fault increments [`local_obs::metrics::FAULTS_INJECTED`] in the process
//! where it executes and logs one `[fault] …` stderr line.

use local_runtime::mix_seed;
use std::sync::atomic::{AtomicU64, Ordering};

/// One scripted fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Exit(1) right before emitting result line `at_cell`.
    Kill {
        /// 0-based result-line index, cumulative over the process lifetime.
        at_cell: u64,
    },
    /// Flush and exit(0) right before emitting result line `at_cell`: the stream ends
    /// cleanly but without a sentinel.
    Truncate {
        /// 0-based result-line index.
        at_cell: u64,
    },
    /// Insert one deterministic garbage line before result line `at_cell`, then keep
    /// emitting valid lines (mid-stream corruption).
    Garble {
        /// 0-based result-line index.
        at_cell: u64,
    },
    /// Emit result line `at_cell` twice.
    Duplicate {
        /// 0-based result-line index.
        at_cell: u64,
    },
    /// Sleep before emitting result line `at_cell`.
    Delay {
        /// 0-based result-line index.
        at_cell: u64,
        /// Sleep duration in milliseconds.
        ms: u64,
    },
    /// Parent-side: fail the first `count` connect (or spawn) attempts to the worker.
    RefuseConnect {
        /// How many attempts to refuse before letting one through.
        count: u64,
    },
}

/// A fault scoped (optionally) to one worker of a fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultClause {
    /// `Some(i)`: applies to worker i, resolved by the coordinator. `None`: applies to the
    /// process that parsed the script.
    pub worker: Option<usize>,
    /// What to do.
    pub action: FaultAction,
}

/// A parsed fault script; empty by default (no faults).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    clauses: Vec<FaultClause>,
}

impl FaultPlan {
    /// Parses a script (see the module docs for the grammar). An empty / all-whitespace
    /// script is the empty plan.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut clauses = Vec::new();
        for raw in spec.split([' ', '\t', '\n', ';']).filter(|s| !s.is_empty()) {
            clauses.push(parse_clause(raw)?);
        }
        Ok(FaultPlan { clauses })
    }

    /// The plan scripted in the `LOCAL_FAULTS` environment variable; the empty plan when
    /// the variable is unset.
    pub fn from_env() -> Result<FaultPlan, String> {
        match std::env::var("LOCAL_FAULTS") {
            Ok(spec) => {
                FaultPlan::parse(&spec).map_err(|e| format!("bad LOCAL_FAULTS {spec:?}: {e}"))
            }
            Err(_) => Ok(FaultPlan::default()),
        }
    }

    /// Like [`FaultPlan::from_env`], but a malformed script is *loudly ignored* (one stderr
    /// line, empty plan) instead of failing the embedding backend. The CLI parses strictly.
    pub fn from_env_lossy() -> FaultPlan {
        FaultPlan::from_env().unwrap_or_else(|e| {
            eprintln!("fault injection disabled: {e}");
            FaultPlan::default()
        })
    }

    /// No faults scripted?
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// The clauses a coordinator should hand to worker `i`, rewritten as unscoped clauses
    /// (ready for [`FaultPlan::render`] into the worker's environment). `refuse` clauses
    /// stay with the coordinator — they fault the *connection*, not the worker — so they
    /// are excluded here.
    pub fn for_worker(&self, i: usize) -> FaultPlan {
        FaultPlan {
            clauses: self
                .clauses
                .iter()
                .filter(|c| {
                    c.worker == Some(i) && !matches!(c.action, FaultAction::RefuseConnect { .. })
                })
                .map(|c| FaultClause { worker: None, action: c.action })
                .collect(),
        }
    }

    /// The unscoped clauses: what this process should apply to its own result stream.
    pub fn unscoped(&self) -> FaultPlan {
        FaultPlan { clauses: self.clauses.iter().filter(|c| c.worker.is_none()).copied().collect() }
    }

    /// How many connect/spawn attempts to worker `i` the coordinator should refuse.
    pub fn refuse_connects(&self, i: usize) -> u64 {
        self.clauses
            .iter()
            .filter(|c| c.worker == Some(i))
            .filter_map(|c| match c.action {
                FaultAction::RefuseConnect { count } => Some(count),
                _ => None,
            })
            .sum()
    }

    /// Renders the plan back into the script grammar ([`FaultPlan::parse`] inverts it).
    pub fn render(&self) -> String {
        self.clauses
            .iter()
            .map(|c| {
                let scope = match c.worker {
                    Some(i) => format!("w{i}:"),
                    None => String::new(),
                };
                let action = match c.action {
                    FaultAction::Kill { at_cell } => format!("kill@{at_cell}"),
                    FaultAction::Truncate { at_cell } => format!("truncate@{at_cell}"),
                    FaultAction::Garble { at_cell } => format!("garble@{at_cell}"),
                    FaultAction::Duplicate { at_cell } => format!("dup@{at_cell}"),
                    FaultAction::Delay { at_cell, ms } => format!("delay@{at_cell}={ms}"),
                    FaultAction::RefuseConnect { count } => format!("refuse*{count}"),
                };
                format!("{scope}{action}")
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn parse_clause(raw: &str) -> Result<FaultClause, String> {
    let (worker, rest) = match raw.strip_prefix('w') {
        Some(tail) => match tail.split_once(':') {
            Some((index, rest)) if index.chars().all(|c| c.is_ascii_digit()) => {
                let index: usize =
                    index.parse().map_err(|e| format!("bad worker index in {raw:?}: {e}"))?;
                (Some(index), rest)
            }
            _ => (None, raw),
        },
        None => (None, raw),
    };
    let at = |text: &str, verb: &str| -> Result<u64, String> {
        text.parse().map_err(|e| format!("bad cell index in {verb}@{text:?}: {e}"))
    };
    let action = if let Some(k) = rest.strip_prefix("kill@") {
        FaultAction::Kill { at_cell: at(k, "kill")? }
    } else if let Some(k) = rest.strip_prefix("truncate@") {
        FaultAction::Truncate { at_cell: at(k, "truncate")? }
    } else if let Some(k) = rest.strip_prefix("garble@") {
        FaultAction::Garble { at_cell: at(k, "garble")? }
    } else if let Some(k) = rest.strip_prefix("dup@") {
        FaultAction::Duplicate { at_cell: at(k, "dup")? }
    } else if let Some(k) = rest.strip_prefix("delay@") {
        let (cell, ms) =
            k.split_once('=').ok_or_else(|| format!("delay clause {raw:?} needs delay@K=MS"))?;
        FaultAction::Delay {
            at_cell: at(cell, "delay")?,
            ms: ms.parse().map_err(|e| format!("bad delay millis in {raw:?}: {e}"))?,
        }
    } else if let Some(n) = rest.strip_prefix("refuse*") {
        FaultAction::RefuseConnect {
            count: n.parse().map_err(|e| format!("bad refusal count in {raw:?}: {e}"))?,
        }
    } else {
        return Err(format!(
            "unknown fault clause {raw:?} (expected kill@K, truncate@K, garble@K, dup@K, \
             delay@K=MS, or refuse*N, optionally scoped w<i>:)"
        ));
    };
    Ok(FaultClause { worker, action })
}

/// What the injector wants done to the result line about to be written, in priority order
/// (a kill wins over everything else scripted at the same index; the derived ordering is
/// the priority, strongest first after `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LineFault {
    /// Emit the line normally.
    None,
    /// Exit(1) without writing the line.
    Kill,
    /// Flush, then exit(0) without writing the line.
    Truncate,
    /// Write one deterministic garbage line, then the real line.
    Garble,
    /// Write the line twice.
    Duplicate,
    /// Sleep this many milliseconds, then write the line.
    Delay(u64),
}

/// Applies a plan's unscoped clauses to this process's result stream. The result-line
/// counter is process-cumulative (one injector per process), so a daemon serving many
/// shard requests counts across all of them.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    results: AtomicU64,
}

impl FaultInjector {
    /// An injector over the plan's unscoped clauses.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        FaultInjector { plan: plan.unscoped(), results: AtomicU64::new(0) }
    }

    /// An injector scripted by `LOCAL_FAULTS` (malformed scripts are loudly ignored).
    pub fn from_env_lossy() -> FaultInjector {
        FaultInjector::new(&FaultPlan::from_env_lossy())
    }

    /// Is any stream fault scripted at all? (Fast path for un-faulted workers.)
    pub fn is_armed(&self) -> bool {
        !self.plan.clauses.is_empty()
    }

    /// Called right before each result line is written (under the stream lock, so indices
    /// follow emission order); returns the fault to apply to this line and advances the
    /// cumulative counter. Fires [`local_obs::metrics::FAULTS_INJECTED`] and logs when a
    /// fault is due.
    pub fn on_result_line(&self) -> LineFault {
        let k = self.results.fetch_add(1, Ordering::Relaxed);
        let mut fired = LineFault::None;
        for clause in &self.plan.clauses {
            let fault = match clause.action {
                FaultAction::Kill { at_cell } if at_cell == k => LineFault::Kill,
                FaultAction::Truncate { at_cell } if at_cell == k => LineFault::Truncate,
                FaultAction::Garble { at_cell } if at_cell == k => LineFault::Garble,
                FaultAction::Duplicate { at_cell } if at_cell == k => LineFault::Duplicate,
                FaultAction::Delay { at_cell, ms } if at_cell == k => LineFault::Delay(ms),
                _ => LineFault::None,
            };
            // Priority: the enum's declaration order, kill strongest.
            if fault != LineFault::None && (fired == LineFault::None || fault < fired) {
                fired = fault;
            }
        }
        if fired != LineFault::None {
            local_obs::counter_add(local_obs::metrics::FAULTS_INJECTED, 1);
            eprintln!("[fault] injecting {fired:?} at result line {k}");
        }
        fired
    }

    /// One deterministic garbage line for result index `k` — stable bytes (derived with the
    /// cell-seed mixer) that can never parse as a protocol record.
    pub fn garbage_line(k: u64) -> String {
        format!("<<garbled {:016x}>>", mix_seed(k, 0xFA017))
    }
}

/// Deterministic capped exponential backoff with jitter for reconnect attempt `attempt`
/// (1-based) to worker `worker`: `min(cap, base << (attempt-1))` plus up to half that
/// again of jitter, derived from the cell-seed mixer so runs are reproducible.
pub fn backoff_ms(worker: usize, attempt: u32, base_ms: u64, cap_ms: u64) -> u64 {
    let exp = base_ms.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(16)).min(cap_ms);
    let jitter = mix_seed(worker as u64, attempt as u64) % (exp / 2 + 1);
    exp + jitter
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_round_trip_through_render() {
        let spec = "w0:kill@3 truncate@7 w2:garble@1 dup@4 w1:delay@2=50 w1:refuse*2";
        let plan = FaultPlan::parse(spec).unwrap();
        assert_eq!(plan.render(), spec);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn separators_and_empty_scripts_parse() {
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  \t ").unwrap().is_empty());
        let plan = FaultPlan::parse("kill@1;garble@2\n dup@3").unwrap();
        assert_eq!(plan.clauses.len(), 3);
    }

    #[test]
    fn malformed_scripts_are_rejected() {
        for bad in ["explode@3", "kill@x", "delay@2", "refuse*z", "w:kill@1", "kill"] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn worker_scoping_splits_coordinator_and_worker_views() {
        let plan = FaultPlan::parse("w0:kill@3 w1:garble@2 w0:refuse*4 delay@9=10").unwrap();
        let w0 = plan.for_worker(0);
        assert_eq!(w0.render(), "kill@3", "refuse stays with the coordinator");
        assert_eq!(plan.for_worker(1).render(), "garble@2");
        assert!(plan.for_worker(2).is_empty());
        assert_eq!(plan.refuse_connects(0), 4);
        assert_eq!(plan.refuse_connects(1), 0);
        assert_eq!(plan.unscoped().render(), "delay@9=10");
    }

    #[test]
    fn injector_fires_at_the_scripted_line_and_counts_cumulatively() {
        let injector = FaultInjector::new(&FaultPlan::parse("garble@2 dup@4").unwrap());
        let faults: Vec<LineFault> = (0..6).map(|_| injector.on_result_line()).collect();
        assert_eq!(
            faults,
            vec![
                LineFault::None,
                LineFault::None,
                LineFault::Garble,
                LineFault::None,
                LineFault::Duplicate,
                LineFault::None,
            ]
        );
    }

    #[test]
    fn kill_outranks_weaker_faults_at_the_same_index() {
        let injector = FaultInjector::new(&FaultPlan::parse("delay@0=5 kill@0").unwrap());
        assert_eq!(injector.on_result_line(), LineFault::Kill);
    }

    #[test]
    fn scoped_clauses_do_not_fire_in_the_parsing_process() {
        let injector = FaultInjector::new(&FaultPlan::parse("w0:kill@0").unwrap());
        assert!(!injector.is_armed());
        assert_eq!(injector.on_result_line(), LineFault::None);
    }

    #[test]
    fn backoff_grows_is_capped_and_deterministic() {
        let d1 = backoff_ms(0, 1, 25, 1000);
        let d4 = backoff_ms(0, 4, 25, 1000);
        assert!((25..2 * 25).contains(&d1));
        assert!((200..2 * 200).contains(&d4), "25 << 3 = 200, plus jitter");
        assert!(backoff_ms(0, 10, 25, 1000) <= 1500, "capped plus jitter");
        assert_eq!(backoff_ms(3, 2, 25, 1000), backoff_ms(3, 2, 25, 1000));
        assert_ne!(backoff_ms(0, 2, 25, 1000), backoff_ms(1, 2, 25, 1000), "jitter per worker");
    }

    #[test]
    fn garbage_lines_are_deterministic_and_non_protocol() {
        assert_eq!(FaultInjector::garbage_line(3), FaultInjector::garbage_line(3));
        assert_ne!(FaultInjector::garbage_line(3), FaultInjector::garbage_line(4));
        assert!(serde_json::from_str(&FaultInjector::garbage_line(3)).is_err());
    }
}

//! The execution-backend abstraction: *how* cells become [`CellResult`]s.
//!
//! The scheduler ([`crate::scheduler`]) owns everything around execution — cache probing,
//! cost-model ordering, streaming aggregation, canonical report order — and hands the
//! actual running of cells to an [`ExecBackend`] as one [`CellShard`]. Three backends ship:
//!
//! * [`InProcessBackend`] — the work-stealing thread pool ([`crate::pool`]) that has always
//!   powered `run_grid`, now behind the trait;
//! * [`ProcessBackend`] — spawns `sweep --worker` subprocesses, ships each a serialized
//!   sub-shard over stdin, and merges their newline-delimited result streams, falling back
//!   to in-process execution when a worker dies or emits garbage;
//! * [`NetworkBackend`] — stripes shards over persistent `sweep --serve` TCP daemons with
//!   connect/read deadlines, capped reconnect backoff, heartbeat liveness, re-dispatch of a
//!   dead peer's cells to healthy peers, and the same in-process rescue of last resort.
//!
//! All three are exercised against the same deterministic fault-injection layer
//! ([`faults`]), so the rescue discipline is tested, not asserted.
//!
//! The determinism contract survives the abstraction because every cell's seed is a pure
//! function of its identity and results are emitted with their shard index: any backend, at
//! any parallelism, produces byte-identical results (wall-clock fields aside).

pub mod coordinator;
pub mod faults;
mod in_process;
pub mod network;
mod process;
pub(crate) mod stream;
pub mod telemetry;

pub use coordinator::{
    coordinate_forever, CoordinatorBackend, CoordinatorConfig, CoordinatorServer,
};
pub use faults::{backoff_ms, FaultAction, FaultClause, FaultInjector, FaultPlan, LineFault};
pub use in_process::InProcessBackend;
pub use network::{serve_forever, NetworkBackend};
pub use process::{worker_serve, ProcessBackend};
pub use telemetry::{liveness_window, SpanDump, WireEvent, WireTrack, WorkerTelemetry};

use crate::cost::CostModel;
use crate::report::CellResult;
use crate::scenario::Scenario;
use serde::{Deserialize, Serialize, Value};
use std::sync::Mutex;

/// A batch of cells dispatched to a backend as one unit of work, in execution (LPT) order.
///
/// The shard is the wire unit of the multi-process protocol: the parent serializes it as one
/// JSON document over a worker's stdin; the worker refuses shards whose `code_version` does
/// not match its own (a stale binary would silently produce non-reproducible results).
#[derive(Debug, Clone, PartialEq)]
pub struct CellShard {
    /// The grid's base seed; every instance/cell seed derives from it.
    pub base_seed: u64,
    /// The [`crate::cache::CODE_VERSION`] of the dispatching engine.
    pub code_version: String,
    /// The cells to execute, already cost-ordered by the scheduler.
    pub cells: Vec<Scenario>,
}

impl CellShard {
    /// A shard of `cells` under this engine's own code version.
    pub fn new(base_seed: u64, cells: Vec<Scenario>) -> Self {
        CellShard { base_seed, code_version: crate::cache::CODE_VERSION.to_string(), cells }
    }

    /// Splits the shard into `count` stripes by round-robining *graph instances* (in
    /// first-appearance order, which is the shard's cost order): every cell follows its
    /// [`local_graphs::InstanceKey`], so cells sharing an instance land on the same worker
    /// and no instance is ever generated twice across the fleet — the cross-process
    /// analogue of the in-process backend's shared instance cache. Cost order is preserved
    /// within each stripe (every stripe still runs its slowest cells first), and each
    /// stripe records its cells' indices in the parent shard so results merge back to
    /// canonical positions.
    pub fn stripe(&self, count: usize) -> Vec<(CellShard, Vec<usize>)> {
        let count = count.max(1).min(self.cells.len().max(1));
        let mut stripes: Vec<(CellShard, Vec<usize>)> = (0..count)
            .map(|_| {
                (
                    CellShard {
                        base_seed: self.base_seed,
                        code_version: self.code_version.clone(),
                        cells: Vec::new(),
                    },
                    Vec::new(),
                )
            })
            .collect();
        let mut assignment: std::collections::HashMap<local_graphs::InstanceKey, usize> =
            std::collections::HashMap::new();
        for (i, cell) in self.cells.iter().enumerate() {
            let next = assignment.len() % count;
            let slot = *assignment.entry(cell.instance_key(self.base_seed)).or_insert(next);
            let (stripe, indices) = &mut stripes[slot];
            stripe.cells.push(cell.clone());
            indices.push(i);
        }
        stripes
    }
}

impl Serialize for CellShard {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("base_seed".into(), Value::U64(self.base_seed)),
            ("code_version".into(), Value::Str(self.code_version.clone())),
            ("cells".into(), self.cells.to_value()),
        ])
    }
}

impl Deserialize for CellShard {
    fn from_value(value: &Value) -> Result<Self, String> {
        let field =
            |key: &str| value.get(key).ok_or_else(|| format!("shard is missing field {key:?}"));
        Ok(CellShard {
            base_seed: u64::from_value(field("base_seed")?)?,
            code_version: String::from_value(field("code_version")?)?,
            cells: Vec::from_value(field("cells")?)?,
        })
    }
}

/// A sink for finished cells: `emit(shard_index, result)`. Backends call it from worker
/// threads as cells complete (it must be `Sync`); the scheduler maps shard indices back to
/// canonical grid positions, so completion order never affects the report.
pub type EmitFn<'a> = dyn Fn(usize, CellResult) + Sync + 'a;

/// Owns "how cells become [`CellResult`]s".
///
/// Implementations must uphold the engine's determinism contract: every emitted result is a
/// pure function of the cell's identity and the shard's base seed (wall-clock fields aside),
/// and every cell of the shard is emitted exactly once — by whatever means, including
/// falling back to a slower path when a faster one fails.
pub trait ExecBackend: Sync {
    /// A short name for logs and reports (`in-process`, `process`).
    fn name(&self) -> &'static str;

    /// The backend's degree of parallelism (worker threads or worker processes), recorded in
    /// the report.
    fn parallelism(&self) -> usize;

    /// Executes every cell of `shard`, emitting each result exactly once with its shard
    /// index. May emit from multiple threads concurrently.
    fn run_shard(&self, shard: &CellShard, emit: &EmitFn);

    /// The calibration observed while running shards: per-`(problem, family)` observation
    /// sums suitable for [`CostModel::merge`]. Distributed backends merge what their workers
    /// shipped home; the default observes nothing (the scheduler can always calibrate from
    /// the emitted results themselves).
    fn calibration(&self) -> CostModel {
        CostModel::new()
    }
}

/// One row of the execution-backend catalog, mirroring the workload/family registries so
/// `sweep --list` documents *how* cells can execute, not just what can run.
#[derive(Debug, Clone, Copy)]
pub struct BackendEntry {
    /// The `--backend` name.
    pub name: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// The CLI flags that configure it.
    pub flags: &'static str,
}

/// Every available execution backend, in `--backend` name order of preference.
pub const BACKEND_ENTRIES: &[BackendEntry] = &[
    BackendEntry {
        name: "in-process",
        summary: "work-stealing thread pool inside the sweep process (default)",
        flags: "--threads",
    },
    BackendEntry {
        name: "process",
        summary: "sweep --worker subprocesses over the stdin/stdout shard protocol; a \
                  failed worker's cells are rescued in-process",
        flags: "--workers, --threads, --faults",
    },
    BackendEntry {
        name: "network",
        summary: "persistent `sweep --serve` TCP daemons; reconnect with capped backoff, \
                  heartbeat liveness, re-dispatch to healthy peers, in-process rescue",
        flags: "--connect, --threads, --io-deadline-ms, --faults",
    },
    BackendEntry {
        name: "coordinator",
        summary: "submits the sweep to a `sweep --coordinate` service that schedules many \
                  clients fairly over a shared daemon fleet (same verify/rescue discipline)",
        flags: "--submit, --client, --io-deadline-ms, --faults",
    },
];

/// Renders the backend catalog for `sweep --list`.
pub fn render_backend_listing() -> String {
    let mut out = String::from("backends (--backend):\n");
    for entry in BACKEND_ENTRIES {
        out.push_str(&format!("  {:<28} {} [{}]\n", entry.name, entry.summary, entry.flags));
    }
    out
}

/// The shared rescue path: re-runs `missing` cells of `stripe` with an
/// [`InProcessBackend`], emitting each result via `emit` keyed by its *position in
/// `missing`* (callers map that back to their own index space), merging the fallback's
/// calibration into `observed`, and counting the re-run cells on
/// [`local_obs::metrics::RESCUED_CELLS`]. Both distributed backends degrade through this
/// one function, so the failure discipline cannot drift between transports.
pub(crate) fn rescue_missing(
    stripe: &CellShard,
    missing: &[usize],
    threads: usize,
    observed: &Mutex<CostModel>,
    emit: &(dyn Fn(usize, CellResult) + Sync),
) {
    if missing.is_empty() {
        return;
    }
    local_obs::counter_add(local_obs::metrics::RESCUED_CELLS, missing.len() as u64);
    let rescue = CellShard {
        base_seed: stripe.base_seed,
        code_version: stripe.code_version.clone(),
        cells: missing.iter().map(|&i| stripe.cells[i].clone()).collect(),
    };
    let fallback = InProcessBackend::new(threads);
    fallback.run_shard(&rescue, emit);
    observed.lock().expect("cost observations poisoned").merge(&fallback.calibration());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use local_graphs::Family;

    fn shard_of(n_cells: usize) -> CellShard {
        let cells = (0..n_cells)
            .map(|i| Scenario {
                problem: workload("mis"),
                family: Family::SparseGnp.into(),
                n: 32 + i,
                replicate: 0,
            })
            .collect();
        CellShard::new(7, cells)
    }

    #[test]
    fn striping_round_robins_and_remembers_parent_indices() {
        // Every cell here has a distinct size, hence a distinct instance key, so
        // instance-grouped striping degenerates to plain round-robin.
        let shard = shard_of(5);
        let stripes = shard.stripe(2);
        assert_eq!(stripes.len(), 2);
        assert_eq!(stripes[0].1, vec![0, 2, 4]);
        assert_eq!(stripes[1].1, vec![1, 3]);
        for (stripe, indices) in &stripes {
            assert_eq!(stripe.base_seed, shard.base_seed);
            assert_eq!(stripe.code_version, shard.code_version);
            for (cell, &parent) in stripe.cells.iter().zip(indices) {
                assert_eq!(cell, &shard.cells[parent]);
            }
        }
    }

    #[test]
    fn cells_sharing_an_instance_land_on_the_same_stripe() {
        // Two problems per (family, n, replicate): each instance is realized by exactly
        // one worker, never regenerated across the fleet.
        let mut cells = Vec::new();
        for n in [32usize, 48, 64] {
            for problem in [workload("mis"), workload("luby-mis")] {
                cells.push(Scenario { problem, family: Family::SparseGnp.into(), n, replicate: 0 });
            }
        }
        let shard = CellShard::new(7, cells);
        let stripes = shard.stripe(2);
        let mut instance_to_stripe = std::collections::HashMap::new();
        for (s, (stripe, _)) in stripes.iter().enumerate() {
            for cell in &stripe.cells {
                let prior = instance_to_stripe.insert(cell.instance_key(shard.base_seed), s);
                assert!(
                    prior.is_none() || prior == Some(s),
                    "instance split across stripes: {}",
                    cell.label()
                );
            }
        }
        // The three instances still spread over both workers.
        assert!(stripes.iter().all(|(stripe, _)| !stripe.cells.is_empty()));
    }

    #[test]
    fn striping_never_exceeds_the_cell_count() {
        let stripes = shard_of(2).stripe(8);
        assert_eq!(stripes.len(), 2, "empty stripes would spawn idle workers");
        let empty = shard_of(0).stripe(4);
        assert_eq!(empty.len(), 1);
        assert!(empty[0].0.cells.is_empty());
    }

    #[test]
    fn shard_serialization_round_trips() {
        let shard = shard_of(3);
        let text = serde_json::to_string(&shard).unwrap();
        let back = CellShard::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, shard);
    }

    #[test]
    fn shards_carry_parameterized_specs_across_the_wire() {
        let shard = CellShard::new(
            11,
            vec![Scenario {
                problem: workload("ruling-set-b4"),
                family: local_graphs::family("gnp-d16"),
                n: 64,
                replicate: 1,
            }],
        );
        let text = serde_json::to_string(&shard).unwrap();
        let back = CellShard::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, shard);
        assert_eq!(back.cells[0].problem.name(), "ruling-set-b4");
        assert_eq!(back.cells[0].family.name(), "gnp-d16");
    }

    #[test]
    fn foreign_code_versions_are_preserved_not_rewritten() {
        let mut shard = shard_of(1);
        shard.code_version = "some-other-build".into();
        let text = serde_json::to_string(&shard).unwrap();
        let back = CellShard::from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.code_version, "some-other-build");
    }
}

//! The in-process backend: the engine's work-stealing thread pool, behind [`ExecBackend`].

use super::{CellShard, EmitFn, ExecBackend};
use crate::cost::CostModel;
use crate::pool;
use crate::scheduler::Instance;
use local_graphs::InstanceKey;
use local_runtime::Session;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Runs shards over [`crate::pool`] inside the current process — the backend `run_grid` has
/// always effectively been.
///
/// Per shard, the backend realizes each distinct graph instance once (in parallel, shared
/// via `Arc` across every cell that runs on it) and then executes the cells in shard order
/// over the pool, one reusable execution [`Session`] per worker thread.
#[derive(Debug)]
pub struct InProcessBackend {
    threads: usize,
    observed: Mutex<CostModel>,
}

impl InProcessBackend {
    /// A backend with the given worker-thread count (`0` = available parallelism, per
    /// [`pool::resolve_worker_count`]).
    pub fn new(threads: usize) -> Self {
        InProcessBackend {
            threads: pool::resolve_worker_count(threads),
            observed: Mutex::new(CostModel::new()),
        }
    }
}

impl ExecBackend for InProcessBackend {
    fn name(&self) -> &'static str {
        "in-process"
    }

    fn parallelism(&self) -> usize {
        self.threads
    }

    fn run_shard(&self, shard: &CellShard, emit: &EmitFn) {
        // Phase 1: realize each distinct instance the shard needs, once, in parallel.
        let keys: Vec<InstanceKey> = shard
            .cells
            .iter()
            .map(|cell| cell.instance_key(shard.base_seed))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let instances = pool::run_indexed(keys.len(), self.threads, |i| {
            Arc::new(Instance::generate(keys[i].clone()))
        });
        let instance_cache: HashMap<InstanceKey, Arc<Instance>> =
            keys.iter().cloned().zip(instances).collect();

        // Phase 2: execute the cells in shard order (the scheduler already cost-ordered
        // them), one reusable session per worker, emitting as cells complete.
        pool::run_indexed_with(shard.cells.len(), self.threads, Session::new, |session, k| {
            let cell = &shard.cells[k];
            let instance = &instance_cache[&cell.instance_key(shard.base_seed)];
            let result = crate::scheduler::run_cell_in(cell, instance, shard.base_seed, session);
            self.observed.lock().expect("cost observations poisoned").observe(&result);
            emit(k, result);
        });
    }

    fn calibration(&self) -> CostModel {
        let mut out = CostModel::new();
        out.merge(&self.observed.lock().expect("cost observations poisoned"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::workload;
    use crate::report::CellResult;
    use crate::scenario::Scenario;
    use local_graphs::Family;

    fn shard() -> CellShard {
        let cells = vec![
            Scenario {
                problem: workload("mis"),
                family: Family::SparseGnp.into(),
                n: 40,
                replicate: 0,
            },
            Scenario {
                problem: workload("mis"),
                family: Family::SparseGnp.into(),
                n: 40,
                replicate: 1,
            },
            Scenario {
                problem: workload("luby-mis"),
                family: Family::Grid.into(),
                n: 36,
                replicate: 0,
            },
        ];
        CellShard::new(5, cells)
    }

    fn run_collect(backend: &InProcessBackend, shard: &CellShard) -> Vec<CellResult> {
        let slots: Vec<Mutex<Option<CellResult>>> =
            shard.cells.iter().map(|_| Mutex::new(None)).collect();
        backend.run_shard(shard, &|k, result| {
            *slots[k].lock().unwrap() = Some(result);
        });
        slots.into_iter().map(|s| s.into_inner().unwrap().expect("cell emitted")).collect()
    }

    #[test]
    fn emits_every_cell_exactly_once_at_any_parallelism() {
        let shard = shard();
        let seq = run_collect(&InProcessBackend::new(1), &shard);
        let par = run_collect(&InProcessBackend::new(8), &shard);
        assert_eq!(seq.len(), shard.cells.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn calibration_covers_the_groups_it_ran() {
        let backend = InProcessBackend::new(2);
        let _ = run_collect(&backend, &shard());
        let groups: Vec<(String, String)> = backend
            .calibration()
            .observations()
            .into_iter()
            .map(|(problem, family, _, _)| (problem, family))
            .collect();
        assert!(groups.contains(&("mis".into(), Family::SparseGnp.name().into())));
        assert!(groups.contains(&("luby-mis".into(), Family::Grid.name().into())));
    }
}

//! # local-bench — the experiment harness.
//!
//! Regenerates the paper's evaluation artefacts. Since the introduction of the
//! `local-engine` crate the Table 1 rows and the scaling series are *thin presets over the
//! engine*: each row is one engine cell ([`local_engine::run_cell`]) pairing a
//! [`local_engine::ProblemKind`] with its canonical graph family, and the full table runs
//! the rows in parallel over the engine's pool.
//!
//! * **Table 1** ([`table1_rows`]): for every row, the measured round count of the non-uniform
//!   baseline run with *correct* guesses versus the uniform algorithm produced by the paper's
//!   transformer, on the same instances. The paper's claim is that the two agree up to a
//!   constant factor; the `ratio` column exhibits it.
//! * **Figure 1** ([`alternation_trace`]): the execution trace of an alternating algorithm —
//!   per sub-iteration guesses, budgets and pruned-node counts.
//! * **Scaling series** ([`scaling_series`]): rounds versus `n` for the uniform and
//!   non-uniform algorithms, the figure-style evidence that the overhead does not grow with
//!   the instance.
//!
//! The Criterion benches under `benches/` wrap these same harness entry points so that
//! `cargo bench` exercises every table and figure.

use local_engine::{
    pool, workload, CellResult, Instance, Scenario, ScenarioGrid, SweepConfig, WorkloadSpec,
};
use local_graphs::{Family, FamilySpec, GraphParams};
use local_uniform::catalog;
use serde::Serialize;

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Row identifier matching the paper's table (e.g. "1 det. MIS / (Δ+1)-col (n, Δ)").
    pub row: String,
    /// Problem name.
    pub problem: String,
    /// Graph family used.
    pub family: String,
    /// Number of nodes of the instance.
    pub n: usize,
    /// Measured rounds of the non-uniform baseline with correct guesses.
    pub nonuniform_rounds: u64,
    /// Measured rounds of the transformed uniform algorithm.
    pub uniform_rounds: u64,
    /// `uniform_rounds / nonuniform_rounds`.
    pub ratio: f64,
    /// Whether both runs produced validated solutions.
    pub valid: bool,
}

impl Table1Row {
    fn from_cell(row: &str, cell: &CellResult) -> Self {
        Table1Row {
            row: row.to_string(),
            problem: cell.problem.clone(),
            family: cell.family.clone(),
            n: cell.n,
            nonuniform_rounds: cell.nonuniform_rounds,
            uniform_rounds: cell.uniform_rounds,
            ratio: cell.overhead_ratio,
            valid: cell.valid,
        }
    }
}

fn units(n: usize) -> Vec<()> {
    vec![(); n]
}

/// The λ(Δ+1)-colouring workload at a given λ (λ = 1 is the canonical `coloring`).
fn lambda_coloring(lambda: u64) -> WorkloadSpec {
    if lambda == 1 {
        workload("coloring")
    } else {
        workload(&format!("lambda{lambda}-coloring"))
    }
}

/// Runs one engine cell: the preset shared by every Table 1 row.
fn run_single(
    problem: WorkloadSpec,
    family: impl Into<FamilySpec>,
    n: usize,
    seed: u64,
) -> CellResult {
    let cell = Scenario { problem, family: family.into(), n, replicate: 0 };
    let instance = Instance::generate(cell.instance_key(seed));
    local_engine::run_cell(&cell, &instance, seed)
}

/// Row 1: deterministic MIS (and (Δ+1)-colouring) with parameters `{Δ, m}`.
pub fn row_mis_delta(n: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload("mis"), Family::SparseGnp, n, seed);
    Table1Row::from_cell("1 det. MIS O(Δ²+log* m)", &cell)
}

/// Row 2: deterministic MIS with the `2^{O(√log n)}` (synthetic) bound, parameter `{n}`.
pub fn row_mis_sqrt_log(n: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload("ps-mis"), Family::DenseGnp, n, seed);
    Table1Row::from_cell("2 det. MIS 2^O(√log n) [synthetic]", &cell)
}

/// Rows 3–4: deterministic MIS on bounded-arboricity graphs, parameters `{a, n, m}`.
pub fn row_mis_arboricity(n: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload("arboricity-mis"), Family::Forest3, n, seed);
    Table1Row::from_cell("3-4 det. MIS arboricity", &cell)
}

/// Row 5: λ(Δ+1)-colouring via Theorem 5.
pub fn row_lambda_coloring(n: usize, lambda: u64, seed: u64) -> Table1Row {
    let cell = run_single(lambda_coloring(lambda), Family::SparseGnp, n, seed);
    Table1Row::from_cell(&format!("5 det. {lambda}(Δ+1)-coloring"), &cell)
}

/// Rows 6–7: O(Δ)-edge-colouring via the line graph + Theorem 5.
pub fn row_edge_coloring(n: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload("edge-coloring"), Family::Regular6, n, seed);
    Table1Row::from_cell("6-7 det. O(Δ)-edge-coloring", &cell)
}

/// Row 8: deterministic maximal matching.
pub fn row_matching(n: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload("matching"), Family::Grid, n, seed);
    Table1Row::from_cell("8 det. maximal matching", &cell)
}

/// Row 8 (exact time shape): the synthetic `O(log⁴ n)` matching black box.
pub fn row_matching_log4(n: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload("log4-matching"), Family::SparseGnp, n, seed);
    Table1Row::from_cell("8 det. MM O(log⁴ n) [synthetic]", &cell)
}

/// Row 9: randomized (2, 2(c+1))-ruling set (weak Monte-Carlo → Las Vegas).
pub fn row_ruling_set(n: usize, beta: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload(&format!("ruling-set-b{beta}")), Family::UnitDisk, n, seed);
    Table1Row::from_cell(&format!("9 rand. (2,{beta})-ruling set"), &cell)
}

/// Row 10: Luby's uniform randomized MIS (the already-uniform baseline of the last row).
pub fn row_uniform_luby(n: usize, seed: u64) -> Table1Row {
    let cell = run_single(workload("luby-mis"), Family::SparseGnp, n, seed);
    Table1Row::from_cell("10 rand. MIS (uniform baseline)", &cell)
}

/// The whole Table 1 reproduction at a given instance size, executed in parallel over the
/// engine's worker pool (one cell per row).
pub fn table1_rows(n: usize, seed: u64) -> Vec<Table1Row> {
    let rows: Vec<Box<dyn Fn() -> Table1Row + Sync>> = vec![
        Box::new(move || row_mis_delta(n, seed)),
        Box::new(move || row_mis_sqrt_log(n, seed)),
        Box::new(move || row_mis_arboricity(n, seed)),
        Box::new(move || row_lambda_coloring(n, 1, seed)),
        Box::new(move || row_lambda_coloring(n, 4, seed)),
        Box::new(move || row_edge_coloring(n.min(128), seed)),
        Box::new(move || row_matching(n, seed)),
        Box::new(move || row_matching_log4(n, seed)),
        Box::new(move || row_ruling_set(n, 2, seed)),
        Box::new(move || row_uniform_luby(n, seed)),
    ];
    pool::run_indexed(rows.len(), pool::default_threads(), |i| rows[i]())
}

/// Renders rows as an aligned text table (the shape of the paper's Table 1, with measured
/// columns added).
pub fn render_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:<17} {:<18} {:>6} {:>12} {:>10} {:>7} {:>6}\n",
        "row", "problem", "family", "n", "non-uniform", "uniform", "ratio", "valid"
    ));
    out.push_str(&"-".repeat(120));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<38} {:<17} {:<18} {:>6} {:>12} {:>10} {:>7.2} {:>6}\n",
            r.row,
            r.problem,
            r.family,
            r.n,
            r.nonuniform_rounds,
            r.uniform_rounds,
            r.ratio,
            r.valid
        ));
    }
    out
}

/// One point of a scaling series.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Number of nodes.
    pub n: usize,
    /// Rounds of the non-uniform baseline with correct guesses.
    pub nonuniform_rounds: u64,
    /// Rounds of the uniform algorithm.
    pub uniform_rounds: u64,
}

/// The figure-style scaling series for the MIS row: rounds versus `n` for the uniform and
/// non-uniform algorithms on the same family — a one-problem engine grid over the sizes.
pub fn scaling_series(sizes: &[usize], family: Family, seed: u64) -> Vec<ScalingPoint> {
    let grid = ScenarioGrid::new()
        .problems([workload("mis")])
        .families([family])
        .sizes(sizes.to_vec())
        .replicates(1)
        .base_seed(seed);
    let report = local_engine::run_grid(&grid, &SweepConfig::default());
    report
        .cells
        .iter()
        .map(|cell| ScalingPoint {
            n: cell.n,
            nonuniform_rounds: cell.nonuniform_rounds,
            uniform_rounds: cell.uniform_rounds,
        })
        .collect()
}

/// One point of the message-complexity study: a `(problem, family, n)` group's message
/// overhead, the dimension of the uniform transformations the paper bounds only in rounds.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadPoint {
    /// Problem name.
    pub problem: String,
    /// Family name.
    pub family: String,
    /// Requested instance size.
    pub n: usize,
    /// Cells (replicates) aggregated into this point.
    pub cells: usize,
    /// Mean per-cell `uniform_messages / max(nonuniform_messages, 1)`.
    pub mean_message_overhead_ratio: f64,
    /// Mean per-cell round overhead (the paper's constant-factor claim), for comparison.
    pub mean_round_overhead_ratio: f64,
    /// Total messages delivered by the uniform executions of the group.
    pub total_uniform_messages: u64,
    /// Total messages delivered by the non-uniform baselines of the group.
    pub total_nonuniform_messages: u64,
}

/// The message-complexity sweep behind the `overhead` preset: runs the full
/// (problem × family × size × seed) grid through the engine and aggregates message
/// overheads per `(problem, family, n)` — finer than the engine's own `(problem, family)`
/// summaries, because the study's question is how the overhead *scales with n*.
pub fn message_overhead_series(
    problems: &[WorkloadSpec],
    families: &[FamilySpec],
    sizes: &[usize],
    seeds: u64,
    base_seed: u64,
) -> Vec<OverheadPoint> {
    let grid = ScenarioGrid::new()
        .problems(problems.to_vec())
        .families(families.to_vec())
        .sizes(sizes.to_vec())
        .replicates(seeds)
        .base_seed(base_seed);
    let report = local_engine::run_grid(&grid, &SweepConfig::default());

    // Group in canonical (grid) order: cells arrive problem-major, family, size, replicate,
    // so consecutive cells of one point are adjacent.
    let mut points: Vec<OverheadPoint> = Vec::new();
    for cell in &report.cells {
        let matches = points.last().is_some_and(|p: &OverheadPoint| {
            p.problem == cell.problem && p.family == cell.family && p.n == cell.requested_n
        });
        if !matches {
            points.push(OverheadPoint {
                problem: cell.problem.clone(),
                family: cell.family.clone(),
                n: cell.requested_n,
                cells: 0,
                mean_message_overhead_ratio: 0.0,
                mean_round_overhead_ratio: 0.0,
                total_uniform_messages: 0,
                total_nonuniform_messages: 0,
            });
        }
        let point = points.last_mut().expect("just pushed");
        point.cells += 1;
        point.mean_message_overhead_ratio +=
            cell.uniform_messages as f64 / cell.nonuniform_messages.max(1) as f64;
        point.mean_round_overhead_ratio += cell.overhead_ratio;
        point.total_uniform_messages += cell.uniform_messages;
        point.total_nonuniform_messages += cell.nonuniform_messages;
    }
    for point in &mut points {
        let count = point.cells.max(1) as f64;
        point.mean_message_overhead_ratio /= count;
        point.mean_round_overhead_ratio /= count;
    }
    points
}

/// Renders overhead points as the study's CSV (one row per `(problem, family, n)`).
pub fn overhead_csv(points: &[OverheadPoint]) -> String {
    let mut out = String::from(
        "problem,family,n,cells,mean_message_overhead_ratio,mean_round_overhead_ratio,\
         total_uniform_messages,total_nonuniform_messages\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{:.6},{},{}\n",
            p.problem,
            p.family,
            p.n,
            p.cells,
            p.mean_message_overhead_ratio,
            p.mean_round_overhead_ratio,
            p.total_uniform_messages,
            p.total_nonuniform_messages
        ));
    }
    out
}

/// The Figure 1 reproduction: the alternating-algorithm trace (per sub-iteration guesses,
/// budget and pruned-node counts) of the uniform MIS on one instance.
pub fn alternation_trace(n: usize, seed: u64) -> Vec<local_uniform::SubIterationTrace> {
    let g = Family::SparseGnp.generate(n, seed);
    let run = catalog::uniform_coloring_mis().solve(&g, &units(g.node_count()), seed);
    run.trace
}

/// Theorem 4 evidence: rounds of the Corollary 1(i) combinator versus each individual
/// component on one family.
#[derive(Debug, Clone, Serialize)]
pub struct FastestOfPoint {
    /// Family name.
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Rounds of the Theorem 4 combinator.
    pub combined_rounds: u64,
    /// Rounds of the uniform Δ-based MIS alone.
    pub delta_based_rounds: u64,
    /// Rounds of the uniform arboricity MIS alone.
    pub arboricity_rounds: u64,
}

/// Runs the Corollary 1(i) comparison on one family.
pub fn fastest_of_point(family: Family, n: usize, seed: u64) -> FastestOfPoint {
    let g = family.generate(n, seed);
    let nn = g.node_count();
    let combined = catalog::corollary1_mis().solve(&g, &units(nn), seed);
    let delta_based = catalog::uniform_coloring_mis().solve(&g, &units(nn), seed);
    let arboricity = catalog::uniform_arboricity_mis().solve(&g, &units(nn), seed);
    FastestOfPoint {
        family: family.name().to_string(),
        n: nn,
        combined_rounds: combined.rounds,
        delta_based_rounds: delta_based.rounds,
        arboricity_rounds: arboricity.rounds,
    }
}

/// Theorem 2 evidence: the sampled mean rounds of the uniform Las Vegas ruling set versus the
/// weak Monte-Carlo bound at the correct parameters.
pub fn las_vegas_mean_rounds(n: usize, beta: usize, samples: u64) -> (f64, f64) {
    let g = Family::SparseGnp.generate(n, 3);
    let p = GraphParams::of(&g);
    let bound = catalog::ruling_set_black_box().time_bound.eval(&[p.n]);
    let mut total = 0u64;
    for seed in 0..samples {
        let run = catalog::uniform_ruling_set(beta).solve(&g, &units(g.node_count()), seed);
        assert!(run.solved);
        total += run.rounds;
    }
    (total as f64 / samples.max(1) as f64, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_are_all_valid_and_bounded() {
        let rows = table1_rows(96, 1);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.valid, "row '{}' failed validation", r.row);
            // The constant of the transformers is row-dependent: rows whose baseline is very
            // fast at correct guesses (e.g. the λ=4 colouring, whose generous palette makes
            // the non-uniform reduction almost instantaneous) pay a larger — but still
            // n-independent — factor. 256 gives every row headroom without letting an
            // asymptotic blow-up slip through.
            assert!(
                r.ratio <= 256.0,
                "row '{}' has uniform/non-uniform ratio {} — constant-factor claim violated",
                r.row,
                r.ratio
            );
        }
        let text = render_table(&rows);
        assert!(text.contains("ruling set"));
        assert!(text.lines().count() >= 12);
    }

    #[test]
    fn scaling_series_ratio_stays_bounded() {
        let series = scaling_series(&[48, 96, 192], Family::Regular6, 2);
        assert_eq!(series.len(), 3);
        let ratios: Vec<f64> = series
            .iter()
            .map(|p| p.uniform_rounds as f64 / p.nonuniform_rounds.max(1) as f64)
            .collect();
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min <= 6.0, "overhead ratio drifted: {ratios:?}");
    }

    #[test]
    fn alternation_trace_shows_progress() {
        let trace = alternation_trace(80, 0);
        assert!(!trace.is_empty());
        // The last executed sub-iteration prunes every remaining node.
        let last = trace.last().unwrap();
        assert_eq!(last.pruned, last.alive_before);
        // Budgets never decrease.
        assert!(trace.windows(2).all(|w| w[1].budget >= w[0].budget));
    }

    #[test]
    fn fastest_of_never_much_worse_than_best_component() {
        let point = fastest_of_point(Family::Forest3, 80, 1);
        let best = point.delta_based_rounds.min(point.arboricity_rounds);
        assert!(
            point.combined_rounds <= 8 * best + 64,
            "combined {} vs best {}",
            point.combined_rounds,
            best
        );
    }

    #[test]
    fn las_vegas_mean_is_comparable_to_monte_carlo_bound() {
        let (mean, bound) = las_vegas_mean_rounds(64, 2, 3);
        assert!(mean > 0.0);
        assert!(mean <= 8.0 * bound + 64.0, "mean {mean} vs bound {bound}");
    }

    #[test]
    fn overhead_series_groups_per_size_with_positive_message_ratios() {
        let points = message_overhead_series(
            &[workload("mis"), workload("matching")],
            &[Family::SparseGnp.into(), Family::Grid.into()],
            &[36, 48],
            2,
            1,
        );
        // 2 problems × 2 families × 2 sizes, one point each (replicates fold in).
        assert_eq!(points.len(), 8);
        assert!(points.iter().all(|p| p.cells == 2));
        // The transformed algorithms simulate real messages: the overhead dimension exists.
        assert!(points.iter().all(|p| p.total_uniform_messages > 0));
        assert!(points.iter().all(|p| p.mean_message_overhead_ratio > 0.0));
        // Canonical order: problem-major, then family, then size.
        assert_eq!(points[0].problem, "mis");
        assert_eq!(points[0].n, 36);
        assert_eq!(points[1].n, 48);
        let csv = overhead_csv(&points);
        assert_eq!(csv.lines().count(), 9, "header + 8 rows");
        assert!(csv.starts_with("problem,family,n,cells,mean_message_overhead_ratio"));
    }

    #[test]
    fn rows_are_presets_over_engine_cells() {
        // A row and the engine cell it wraps must agree exactly.
        let row = row_matching(64, 9);
        let cell = run_single(workload("matching"), Family::Grid, 64, 9);
        assert_eq!(row.uniform_rounds, cell.uniform_rounds);
        assert_eq!(row.nonuniform_rounds, cell.nonuniform_rounds);
        assert_eq!(row.valid, cell.valid);
        assert_eq!(row.family, "grid");
    }
}

//! # local-bench — the experiment harness.
//!
//! Regenerates the paper's evaluation artefacts:
//!
//! * **Table 1** ([`table1_rows`]): for every row, the measured round count of the non-uniform
//!   baseline run with *correct* guesses versus the uniform algorithm produced by the paper's
//!   transformer, on the same instances. The paper's claim is that the two agree up to a
//!   constant factor; the `ratio` column exhibits it.
//! * **Figure 1** ([`alternation_trace`]): the execution trace of an alternating algorithm —
//!   per sub-iteration guesses, budgets and pruned-node counts.
//! * **Scaling series** ([`scaling_series`]): rounds versus `n` for the uniform and
//!   non-uniform algorithms, the figure-style evidence that the overhead does not grow with
//!   the instance.
//!
//! The Criterion benches under `benches/` wrap these same harness entry points so that
//! `cargo bench` exercises every table and figure.

use local_algos::mis::LubyMis;
use local_graphs::{Family, GraphParams};
use local_runtime::GraphAlgorithm;
use local_uniform::catalog;
use local_uniform::problem::{MatchingProblem, MisProblem, Problem, RulingSetProblem};
use serde::Serialize;

/// One row of the Table 1 reproduction.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Row identifier matching the paper's table (e.g. "1 det. MIS / (Δ+1)-col (n, Δ)").
    pub row: String,
    /// Problem name.
    pub problem: String,
    /// Graph family used.
    pub family: String,
    /// Number of nodes of the instance.
    pub n: usize,
    /// Measured rounds of the non-uniform baseline with correct guesses.
    pub nonuniform_rounds: u64,
    /// Measured rounds of the transformed uniform algorithm.
    pub uniform_rounds: u64,
    /// `uniform_rounds / nonuniform_rounds`.
    pub ratio: f64,
    /// Whether both runs produced validated solutions.
    pub valid: bool,
}

impl Table1Row {
    fn new(
        row: &str,
        problem: &str,
        family: Family,
        n: usize,
        nonuniform: u64,
        uniform: u64,
        valid: bool,
    ) -> Self {
        Table1Row {
            row: row.to_string(),
            problem: problem.to_string(),
            family: family.name().to_string(),
            n,
            nonuniform_rounds: nonuniform,
            uniform_rounds: uniform,
            ratio: uniform as f64 / nonuniform.max(1) as f64,
            valid,
        }
    }
}

fn units(n: usize) -> Vec<()> {
    vec![(); n]
}

/// Row 1: deterministic MIS (and (Δ+1)-colouring) with parameters `{Δ, m}`.
pub fn row_mis_delta(n: usize, seed: u64) -> Table1Row {
    let family = Family::SparseGnp;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    let black_box = catalog::coloring_mis_black_box();
    let nu = (black_box.build)(&[p.max_degree, p.max_id])
        .execute(&g, &units(g.node_count()), None, seed);
    let uni = catalog::uniform_coloring_mis().solve(&g, &units(g.node_count()), seed);
    let valid = MisProblem.validate(&g, &units(g.node_count()), &nu.outputs).is_ok()
        && MisProblem.validate(&g, &units(g.node_count()), &uni.outputs).is_ok();
    Table1Row::new(
        "1 det. MIS O(Δ²+log* m)",
        "MIS",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds,
        valid,
    )
}

/// Row 2: deterministic MIS with the `2^{O(√log n)}` (synthetic) bound, parameter `{n}`.
pub fn row_mis_sqrt_log(n: usize, seed: u64) -> Table1Row {
    let family = Family::DenseGnp;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    let black_box = catalog::panconesi_srinivasan_mis_black_box();
    let nu = (black_box.build)(&[p.n]).execute(&g, &units(g.node_count()), None, seed);
    let uni = catalog::uniform_ps_mis().solve(&g, &units(g.node_count()), seed);
    let valid = MisProblem.validate(&g, &units(g.node_count()), &nu.outputs).is_ok()
        && MisProblem.validate(&g, &units(g.node_count()), &uni.outputs).is_ok();
    Table1Row::new(
        "2 det. MIS 2^O(√log n) [synthetic]",
        "MIS",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds,
        valid,
    )
}

/// Rows 3–4: deterministic MIS on bounded-arboricity graphs, parameters `{a, n, m}`.
pub fn row_mis_arboricity(n: usize, seed: u64) -> Table1Row {
    let family = Family::Forest3;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    let black_box = catalog::arboricity_mis_black_box();
    let nu = (black_box.build)(&[p.degeneracy.max(1), p.n, p.max_id])
        .execute(&g, &units(g.node_count()), None, seed);
    let uni = catalog::uniform_arboricity_mis().solve(&g, &units(g.node_count()), seed);
    let valid = MisProblem.validate(&g, &units(g.node_count()), &nu.outputs).is_ok()
        && MisProblem.validate(&g, &units(g.node_count()), &uni.outputs).is_ok();
    Table1Row::new(
        "3-4 det. MIS arboricity",
        "MIS",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds,
        valid,
    )
}

/// Row 5: λ(Δ+1)-colouring via Theorem 5.
pub fn row_lambda_coloring(n: usize, lambda: u64, seed: u64) -> Table1Row {
    let family = Family::SparseGnp;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    let black_box = catalog::lambda_coloring_box(lambda);
    let nu =
        (black_box.build)(p.max_degree, p.max_id).execute(&g, &units(g.node_count()), None, seed);
    let transformer = catalog::uniform_lambda_coloring(lambda);
    let uni = transformer.solve(&g, seed);
    let nu_valid = local_algos::checkers::check_coloring_with_palette(
        &g,
        &nu.outputs,
        (black_box.palette)(p.max_degree),
    )
    .is_ok();
    let uni_valid = local_algos::checkers::check_coloring(&g, &uni.colors).is_ok()
        && (local_algos::checkers::palette_size(&uni.colors) as u64)
            <= transformer.palette_bound(p.max_degree);
    Table1Row::new(
        &format!("5 det. {lambda}(Δ+1)-coloring"),
        "coloring",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds,
        nu_valid && uni_valid,
    )
}

/// Rows 6–7: O(Δ)-edge-colouring via the line graph + Theorem 5.
pub fn row_edge_coloring(n: usize, seed: u64) -> Table1Row {
    let family = Family::Regular6;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    // Non-uniform baseline: edge colouring with correct guesses.
    let baseline = local_algos::edge_coloring::LineGraphEdgeColoring {
        delta_guess: p.max_degree,
        id_bound_guess: p.max_id,
    };
    let nu = baseline.execute(&g, &units(g.node_count()), None, seed);
    let nu_valid = local_algos::checkers::check_edge_coloring(&g, &nu.outputs).is_ok();
    // Uniform: Theorem 5 on the line graph (vertex colouring of L(G) = edge colouring of G).
    let (lg, edges) = g.line_graph();
    let transformer = catalog::uniform_lambda_coloring(1);
    let uni = transformer.solve(&lg, seed);
    let mut edge_color = std::collections::HashMap::new();
    for (i, &(u, v)) in edges.iter().enumerate() {
        edge_color.insert((u.min(v), u.max(v)), uni.colors[i]);
    }
    let port_colors: Vec<Vec<u64>> = (0..g.node_count())
        .map(|v| g.neighbors(v).iter().map(|&w| edge_color[&(v.min(w), v.max(w))]).collect())
        .collect();
    let uni_valid = local_algos::checkers::check_edge_coloring(&g, &port_colors).is_ok();
    Table1Row::new(
        "6-7 det. O(Δ)-edge-coloring",
        "edge-coloring",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds + 1,
        nu_valid && uni_valid,
    )
}

/// Row 8: deterministic maximal matching.
pub fn row_matching(n: usize, seed: u64) -> Table1Row {
    let family = Family::Grid;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    let black_box = catalog::matching_black_box();
    let nu = (black_box.build)(&[p.max_degree, p.max_id])
        .execute(&g, &units(g.node_count()), None, seed);
    let uni = catalog::uniform_matching().solve(&g, &units(g.node_count()), seed);
    let valid = MatchingProblem.validate(&g, &units(g.node_count()), &nu.outputs).is_ok()
        && MatchingProblem.validate(&g, &units(g.node_count()), &uni.outputs).is_ok();
    Table1Row::new(
        "8 det. maximal matching",
        "maximal-matching",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds,
        valid,
    )
}

/// Row 8 (exact time shape): the synthetic `O(log⁴ n)` matching black box.
pub fn row_matching_log4(n: usize, seed: u64) -> Table1Row {
    let family = Family::SparseGnp;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    let black_box = catalog::synthetic_log4_matching_black_box();
    let nu = (black_box.build)(&[p.n]).execute(&g, &units(g.node_count()), None, seed);
    let uni = catalog::uniform_log4_matching().solve(&g, &units(g.node_count()), seed);
    let valid = MatchingProblem.validate(&g, &units(g.node_count()), &nu.outputs).is_ok()
        && MatchingProblem.validate(&g, &units(g.node_count()), &uni.outputs).is_ok();
    Table1Row::new(
        "8 det. MM O(log⁴ n) [synthetic]",
        "maximal-matching",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds,
        valid,
    )
}

/// Row 9: randomized (2, 2(c+1))-ruling set (weak Monte-Carlo → Las Vegas).
pub fn row_ruling_set(n: usize, beta: usize, seed: u64) -> Table1Row {
    let family = Family::UnitDisk;
    let g = family.generate(n, seed);
    let p = GraphParams::of(&g);
    let black_box = catalog::ruling_set_black_box();
    let nu = (black_box.build)(&[p.n]).execute(&g, &units(g.node_count()), None, seed);
    let uni = catalog::uniform_ruling_set(beta).solve(&g, &units(g.node_count()), seed);
    let problem = RulingSetProblem::two(beta);
    let valid = problem.validate(&g, &units(g.node_count()), &uni.outputs).is_ok();
    Table1Row::new(
        &format!("9 rand. (2,{beta})-ruling set"),
        "ruling-set",
        family,
        g.node_count(),
        nu.rounds,
        uni.rounds,
        valid,
    )
}

/// Row 10: Luby's uniform randomized MIS (the already-uniform baseline of the last row).
pub fn row_uniform_luby(n: usize, seed: u64) -> Table1Row {
    let family = Family::SparseGnp;
    let g = family.generate(n, seed);
    let run = LubyMis.execute(&g, &units(g.node_count()), None, seed);
    let valid = MisProblem.validate(&g, &units(g.node_count()), &run.outputs).is_ok();
    Table1Row::new(
        "10 rand. MIS (uniform baseline)",
        "MIS",
        family,
        g.node_count(),
        run.rounds,
        run.rounds,
        valid,
    )
}

/// The whole Table 1 reproduction at a given instance size.
pub fn table1_rows(n: usize, seed: u64) -> Vec<Table1Row> {
    vec![
        row_mis_delta(n, seed),
        row_mis_sqrt_log(n, seed),
        row_mis_arboricity(n, seed),
        row_lambda_coloring(n, 1, seed),
        row_lambda_coloring(n, 4, seed),
        row_edge_coloring(n.min(128), seed),
        row_matching(n, seed),
        row_matching_log4(n, seed),
        row_ruling_set(n, 2, seed),
        row_uniform_luby(n, seed),
    ]
}

/// Renders rows as an aligned text table (the shape of the paper's Table 1, with measured
/// columns added).
pub fn render_table(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<38} {:<17} {:<18} {:>6} {:>12} {:>10} {:>7} {:>6}\n",
        "row", "problem", "family", "n", "non-uniform", "uniform", "ratio", "valid"
    ));
    out.push_str(&"-".repeat(120));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:<38} {:<17} {:<18} {:>6} {:>12} {:>10} {:>7.2} {:>6}\n",
            r.row,
            r.problem,
            r.family,
            r.n,
            r.nonuniform_rounds,
            r.uniform_rounds,
            r.ratio,
            r.valid
        ));
    }
    out
}

/// One point of a scaling series.
#[derive(Debug, Clone, Serialize)]
pub struct ScalingPoint {
    /// Number of nodes.
    pub n: usize,
    /// Rounds of the non-uniform baseline with correct guesses.
    pub nonuniform_rounds: u64,
    /// Rounds of the uniform algorithm.
    pub uniform_rounds: u64,
}

/// The figure-style scaling series for the MIS row: rounds versus `n` for the uniform and
/// non-uniform algorithms on the same family.
pub fn scaling_series(sizes: &[usize], family: Family, seed: u64) -> Vec<ScalingPoint> {
    sizes
        .iter()
        .map(|&n| {
            let g = family.generate(n, seed);
            let p = GraphParams::of(&g);
            let black_box = catalog::coloring_mis_black_box();
            let nu = (black_box.build)(&[p.max_degree, p.max_id])
                .execute(&g, &units(g.node_count()), None, seed);
            let uni = catalog::uniform_coloring_mis().solve(&g, &units(g.node_count()), seed);
            ScalingPoint {
                n: g.node_count(),
                nonuniform_rounds: nu.rounds,
                uniform_rounds: uni.rounds,
            }
        })
        .collect()
}

/// The Figure 1 reproduction: the alternating-algorithm trace (per sub-iteration guesses,
/// budget and pruned-node counts) of the uniform MIS on one instance.
pub fn alternation_trace(n: usize, seed: u64) -> Vec<local_uniform::SubIterationTrace> {
    let g = Family::SparseGnp.generate(n, seed);
    let run = catalog::uniform_coloring_mis().solve(&g, &units(g.node_count()), seed);
    run.trace
}

/// Theorem 4 evidence: rounds of the Corollary 1(i) combinator versus each individual
/// component on one family.
#[derive(Debug, Clone, Serialize)]
pub struct FastestOfPoint {
    /// Family name.
    pub family: String,
    /// Number of nodes.
    pub n: usize,
    /// Rounds of the Theorem 4 combinator.
    pub combined_rounds: u64,
    /// Rounds of the uniform Δ-based MIS alone.
    pub delta_based_rounds: u64,
    /// Rounds of the uniform arboricity MIS alone.
    pub arboricity_rounds: u64,
}

/// Runs the Corollary 1(i) comparison on one family.
pub fn fastest_of_point(family: Family, n: usize, seed: u64) -> FastestOfPoint {
    let g = family.generate(n, seed);
    let nn = g.node_count();
    let combined = catalog::corollary1_mis().solve(&g, &units(nn), seed);
    let delta_based = catalog::uniform_coloring_mis().solve(&g, &units(nn), seed);
    let arboricity = catalog::uniform_arboricity_mis().solve(&g, &units(nn), seed);
    FastestOfPoint {
        family: family.name().to_string(),
        n: nn,
        combined_rounds: combined.rounds,
        delta_based_rounds: delta_based.rounds,
        arboricity_rounds: arboricity.rounds,
    }
}

/// Theorem 2 evidence: the sampled mean rounds of the uniform Las Vegas ruling set versus the
/// weak Monte-Carlo bound at the correct parameters.
pub fn las_vegas_mean_rounds(n: usize, beta: usize, samples: u64) -> (f64, f64) {
    let g = Family::SparseGnp.generate(n, 3);
    let p = GraphParams::of(&g);
    let bound = catalog::ruling_set_black_box().time_bound.eval(&[p.n]);
    let mut total = 0u64;
    for seed in 0..samples {
        let run = catalog::uniform_ruling_set(beta).solve(&g, &units(g.node_count()), seed);
        assert!(run.solved);
        total += run.rounds;
    }
    (total as f64 / samples.max(1) as f64, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_are_all_valid_and_bounded() {
        let rows = table1_rows(96, 1);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.valid, "row '{}' failed validation", r.row);
            assert!(
                r.ratio <= 64.0,
                "row '{}' has uniform/non-uniform ratio {} — constant-factor claim violated",
                r.row,
                r.ratio
            );
        }
        let text = render_table(&rows);
        assert!(text.contains("ruling set"));
        assert!(text.lines().count() >= 12);
    }

    #[test]
    fn scaling_series_ratio_stays_bounded() {
        let series = scaling_series(&[48, 96, 192], Family::Regular6, 2);
        assert_eq!(series.len(), 3);
        let ratios: Vec<f64> = series
            .iter()
            .map(|p| p.uniform_rounds as f64 / p.nonuniform_rounds.max(1) as f64)
            .collect();
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min <= 6.0, "overhead ratio drifted: {ratios:?}");
    }

    #[test]
    fn alternation_trace_shows_progress() {
        let trace = alternation_trace(80, 0);
        assert!(!trace.is_empty());
        // The last executed sub-iteration prunes every remaining node.
        let last = trace.last().unwrap();
        assert_eq!(last.pruned, last.alive_before);
        // Budgets never decrease.
        assert!(trace.windows(2).all(|w| w[1].budget >= w[0].budget));
    }

    #[test]
    fn fastest_of_never_much_worse_than_best_component() {
        let point = fastest_of_point(Family::Forest3, 80, 1);
        let best = point.delta_based_rounds.min(point.arboricity_rounds);
        assert!(
            point.combined_rounds <= 8 * best + 64,
            "combined {} vs best {}",
            point.combined_rounds,
            best
        );
    }

    #[test]
    fn las_vegas_mean_is_comparable_to_monte_carlo_bound() {
        let (mean, bound) = las_vegas_mean_rounds(64, 2, 3);
        assert!(mean > 0.0);
        assert!(mean <= 8.0 * bound + 64.0, "mean {mean} vs bound {bound}");
    }
}

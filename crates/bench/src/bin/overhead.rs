//! The message-complexity preset: sweep `mean_message_overhead_ratio` across families ×
//! sizes and emit the study's CSV — the ROADMAP's message-complexity item. The paper bounds
//! the uniform transformations in *rounds* only; this measures what they cost in
//! *messages*, and how that cost scales with `n`.
//!
//! Usage: `cargo run -p local-bench --bin overhead [-- --sizes 64..512 --seeds 4 \
//!         --out overhead.csv]`

use local_engine::{parse_sizes, ProblemKind};
use local_graphs::Family;
use std::process::ExitCode;

fn main() -> ExitCode {
    // Defaults: every message-simulating transformer of the catalog (the synthetic black
    // boxes charge rounds without messages and would only report zeros), on families that
    // span sparse, structured, dense-ish, and geometric instances.
    let problems = [
        ProblemKind::Mis,
        ProblemKind::Matching,
        ProblemKind::RulingSet(2),
        ProblemKind::LambdaColoring(1),
    ];
    let families = [Family::SparseGnp, Family::Grid, Family::Regular6, Family::UnitDisk];
    let mut sizes = vec![64usize, 128, 256];
    let mut seeds = 3u64;
    let mut out: Option<String> = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        let parsed = match flag.as_str() {
            "--sizes" => value("--sizes").and_then(|v| parse_sizes(&v).map(|s| sizes = s)),
            "--seeds" => value("--seeds").and_then(|v| {
                v.parse().map(|s| seeds = s).map_err(|e| format!("bad --seeds: {e}"))
            }),
            "--out" => value("--out").map(|v| out = Some(v)),
            other => Err(format!("unknown flag: {other} (overhead takes --sizes --seeds --out)")),
        };
        if let Err(message) = parsed {
            eprintln!("overhead: {message}");
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "overhead: {} problems × {} families × {} sizes × {seeds} seeds",
        problems.len(),
        families.len(),
        sizes.len()
    );
    let points = local_bench::message_overhead_series(&problems, &families, &sizes, seeds, 7);
    let csv = local_bench::overhead_csv(&points);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &csv) {
                eprintln!("overhead: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} rows to {path}", points.len());
        }
        None => print!("{csv}"),
    }
    ExitCode::SUCCESS
}

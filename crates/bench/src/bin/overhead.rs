//! The message-complexity preset: sweep `mean_message_overhead_ratio` across families ×
//! sizes and emit the study's CSV — the ROADMAP's message-complexity item. The paper bounds
//! the uniform transformations in *rounds* only; this measures what they cost in
//! *messages*, and how that cost scales with `n` and with the instance's density (the
//! parameterized `gnp-d<d>` degree ladder makes density a first-class axis).
//!
//! Usage: `cargo run --release -p local-bench --bin overhead [-- --sizes 64..512 --seeds 4 \
//!         --problems mis,matching --families gnp-d2,gnp-d8,gnp-d16 --out overhead.csv]`

use local_engine::{parse_sizes, parse_workload, workload, WorkloadSpec};
use local_graphs::{parse_family, Family, FamilySpec};
use std::process::ExitCode;

fn main() -> ExitCode {
    // Defaults: every message-simulating transformer of the catalog (the synthetic black
    // boxes charge rounds without messages and would only report zeros), on families that
    // span sparse, structured, dense-ish, and geometric instances.
    let mut problems: Vec<WorkloadSpec> = vec![
        workload("mis"),
        workload("matching"),
        workload("ruling-set-b2"),
        workload("coloring"),
    ];
    let mut families: Vec<FamilySpec> = vec![
        Family::SparseGnp.into(),
        Family::Grid.into(),
        Family::Regular6.into(),
        Family::UnitDisk.into(),
    ];
    let mut sizes = vec![64usize, 128, 256];
    let mut seeds = 3u64;
    let mut out: Option<String> = None;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        let parsed = match flag.as_str() {
            "--sizes" => value("--sizes").and_then(|v| parse_sizes(&v).map(|s| sizes = s)),
            "--seeds" => value("--seeds").and_then(|v| {
                v.parse().map(|s| seeds = s).map_err(|e| format!("bad --seeds: {e}"))
            }),
            "--problems" => value("--problems").and_then(|v| {
                v.split(',')
                    .map(|p| {
                        parse_workload(p.trim())
                            .ok_or_else(|| format!("unknown problem: {p:?} (see sweep --list)"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|p| problems = p)
            }),
            "--families" => value("--families").and_then(|v| {
                v.split(',')
                    .map(|f| {
                        parse_family(f.trim())
                            .ok_or_else(|| format!("unknown family: {f:?} (see sweep --list)"))
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .map(|f| families = f)
            }),
            "--out" => value("--out").map(|v| out = Some(v)),
            other => Err(format!(
                "unknown flag: {other} (overhead takes --sizes --seeds --problems --families --out)"
            )),
        };
        if let Err(message) = parsed {
            eprintln!("overhead: {message}");
            return ExitCode::FAILURE;
        }
    }

    eprintln!(
        "overhead: {} problems × {} families × {} sizes × {seeds} seeds",
        problems.len(),
        families.len(),
        sizes.len()
    );
    let points = local_bench::message_overhead_series(&problems, &families, &sizes, seeds, 7);
    let csv = local_bench::overhead_csv(&points);
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &csv) {
                eprintln!("overhead: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} rows to {path}", points.len());
        }
        None => print!("{csv}"),
    }
    ExitCode::SUCCESS
}

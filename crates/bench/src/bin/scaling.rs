//! The figure-style scaling series: rounds vs. n for the uniform and non-uniform MIS on
//! several graph families, plus the Theorem 4 (fastest-of) and Theorem 2 (Las Vegas) evidence.
//!
//! Usage: `cargo run -p local-bench --bin scaling`

use local_graphs::Family;

fn main() {
    let sizes = [64usize, 128, 256, 512];
    for family in [Family::Regular6, Family::SparseGnp, Family::Forest3] {
        println!("== scaling on {} ==", family.name());
        println!("{:>8} {:>14} {:>10} {:>7}", "n", "non-uniform", "uniform", "ratio");
        for p in local_bench::scaling_series(&sizes, family, 7) {
            println!(
                "{:>8} {:>14} {:>10} {:>7.2}",
                p.n,
                p.nonuniform_rounds,
                p.uniform_rounds,
                p.uniform_rounds as f64 / p.nonuniform_rounds.max(1) as f64
            );
        }
        println!();
    }

    println!("== Corollary 1(i): run-as-fast-as-the-fastest (Theorem 4) ==");
    println!(
        "{:<18} {:>6} {:>10} {:>12} {:>12}",
        "family", "n", "combined", "Δ-based", "arboricity"
    );
    for family in [Family::Forest3, Family::Regular6, Family::DenseGnp] {
        let p = local_bench::fastest_of_point(family, 128, 3);
        println!(
            "{:<18} {:>6} {:>10} {:>12} {:>12}",
            p.family, p.n, p.combined_rounds, p.delta_based_rounds, p.arboricity_rounds
        );
    }

    println!("\n== Theorem 2: Las Vegas ruling set (mean over 5 runs) ==");
    let (mean, bound) = local_bench::las_vegas_mean_rounds(128, 2, 5);
    println!("mean uniform Las Vegas rounds: {mean:.1}   weak-Monte-Carlo bound f(n): {bound:.1}");
}

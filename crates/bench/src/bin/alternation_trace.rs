//! Regenerates Figure 1 (the schematic of an alternating algorithm) as a concrete execution
//! trace: per sub-iteration guesses, budget, and pruned-node counts of the uniform MIS.
//!
//! Usage: `cargo run -p local-bench --bin alternation_trace [-- <n> <seed>]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(256);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);
    println!("Alternating algorithm trace (Figure 1), uniform MIS on gnp-avg8 with n ≈ {n}\n");
    println!(
        "{:>5} {:>22} {:>9} {:>13} {:>9}",
        "iter", "guesses (Δ̃, m̃)", "budget", "alive before", "pruned"
    );
    for t in local_bench::alternation_trace(n, seed) {
        println!(
            "{:>5} {:>22} {:>9} {:>13} {:>9}",
            t.iteration,
            format!("{:?}", t.guesses),
            t.budget,
            t.alive_before,
            t.pruned
        );
    }
}

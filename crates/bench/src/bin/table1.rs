//! Regenerates the paper's Table 1: non-uniform (correct guesses) vs. transformed uniform
//! round counts for every row, on moderate instances.
//!
//! Usage: `cargo run -p local-bench --bin table1 [-- <n> <seed>]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(192);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);
    println!("Table 1 reproduction (n ≈ {n}, seed {seed})");
    println!(
        "uniform = transformed by Theorems 1/2/5; non-uniform = baseline with correct guesses\n"
    );
    let rows = local_bench::table1_rows(n, seed);
    println!("{}", local_bench::render_table(&rows));
    let worst = rows.iter().map(|r| r.ratio).fold(0.0, f64::max);
    println!("worst uniform/non-uniform ratio: {worst:.2} (paper's claim: bounded by a constant)");
}

//! The zero-rebuild alternation hot path: the live-view/session driver versus the
//! pre-refactor execution strategy (rebuild-per-prune driver + the seed's ball-based pruning)
//! on doubling-budget uniform MIS runs at n = 10 000.
//!
//! Two black boxes bracket the workload space:
//!
//! * `ps_mis` — the synthetic `2^{O(√log n)}` box (Table 1 row 2). Its attempts charge rounds
//!   without simulating messages, so the measurement isolates the alternation driver itself
//!   (attempt dispatch, pruning, configuration shrinking) — the cost the refactor removes.
//! * `coloring_mis` — the real `O(Δ² + log* m)` colouring pipeline. Attempts simulate every
//!   message, which both paths share, so the gap narrows to the session/runtime savings
//!   (frozen init slabs, arc-arena message routing, pooled buffers).
//!
//! All paths produce byte-identical `UniformRun`s (enforced by `local-core`'s rebuild and
//! property tests) — the comparison is pure throughput.
//!
//! On top of the timed comparison this bench **proves the allocation-free steady state**: a
//! counting global allocator asserts that repeated attempts (`execute_view` runs) on an
//! unchanged configuration, with their executions recycled into the session, perform *zero*
//! heap allocations — the init slab, program/output buffers, message arenas, and RNG tables
//! are all served from the session's caches. A `kernels` group additionally times each
//! `local-simd` kernel's portable scalar reference against its dispatched (SSE2/AVX2)
//! implementation at cache-resident (10^4) and memory-streaming (10^6) sizes. It emits
//! `BENCH_PR7.json` at the workspace root (wall micros per scenario and per kernel,
//! plus the active dispatch level) to extend the cross-PR perf trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use local_runtime::{
    Action, GraphAlgorithm, GraphView, NodeInit, NodeProgram, ProgramSpec, RoundCtx, Session,
};
use local_uniform::rebuild::SeedRulingSetPruning;
use local_uniform::transform::UniformTransformer;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A pass-through allocator that counts allocation events while armed. Deallocations are
/// not counted (returning pooled memory is fine); `alloc`, `realloc`, and `alloc_zeroed`
/// all are — any of them in the steady state means a cache failed to do its job.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`; the counter is a relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc_zeroed(layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Counts allocation events inside `f`.
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    let result = f();
    ARMED.store(false, Ordering::SeqCst);
    (ALLOCATIONS.load(Ordering::SeqCst), result)
}

/// A heap-free gossip spec standing in for a budgeted black-box attempt: flood the maximum
/// identity for `radius` rounds (every node broadcasts every round — the message-heavy
/// shape of the colouring attempts), then halt with it.
struct MaxIdAttempt {
    radius: u64,
}

struct MaxIdProg {
    radius: u64,
    best: u64,
}

impl NodeProgram for MaxIdProg {
    type Msg = u64;
    type Output = u64;
    fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) -> Action<u64> {
        for m in ctx.inbox() {
            self.best = self.best.max(m.msg);
        }
        if ctx.round() == self.radius {
            return Action::Halt(self.best);
        }
        ctx.broadcast(self.best);
        Action::Continue
    }
}

impl ProgramSpec for MaxIdAttempt {
    type Input = ();
    type Msg = u64;
    type Output = u64;
    type Prog = MaxIdProg;
    fn build(&self, init: &NodeInit<()>) -> MaxIdProg {
        MaxIdProg { radius: self.radius, best: init.id }
    }
    fn default_output(&self, init: &NodeInit<()>) -> u64 {
        init.id
    }
}

/// The allocation-free steady state: repeated attempts on an unchanged view, with the
/// executions recycled back into the session, must not allocate at all. Returns the counted
/// allocations (asserted zero) for the JSON artefact.
fn assert_allocation_free_steady_state(view: &GraphView<'_>, inputs: &[()]) -> u64 {
    let spec = MaxIdAttempt { radius: 8 };
    let mut session = Session::new();
    // Warm-up: the first attempt builds the init slab, the message arenas, and the pooled
    // program/output buffers; recycling hands the output vector back.
    for _ in 0..2 {
        let run = spec.execute_view(view, inputs, Some(16), 7, &mut session);
        session.recycle_outputs(run.outputs);
    }
    let (allocations, messages) = count_allocations(|| {
        let mut messages = 0;
        for attempt in 0..32u64 {
            let run = spec.execute_view(view, inputs, Some(16), 7 ^ attempt, &mut session);
            messages += run.messages;
            session.recycle_outputs(run.outputs);
        }
        messages
    });
    assert!(messages > 0, "the steady-state attempts must actually simulate messages");
    assert_eq!(
        allocations, 0,
        "steady-state attempts on an unchanged configuration must be allocation-free \
         ({allocations} allocations observed over 32 attempts)"
    );
    allocations
}

/// Times `f` over `samples` runs and returns the mean wall micros.
fn mean_micros<R>(samples: u32, mut f: impl FnMut() -> R) -> u64 {
    let started = Instant::now();
    for _ in 0..samples {
        criterion::black_box(f());
    }
    (started.elapsed().as_micros() as u64) / u64::from(samples.max(1))
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("alternation_hotpath");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    // Resolve the SIMD dispatch level once up front: the first dispatched call reads the
    // `LOCAL_SIMD` override from the environment (which allocates), and the allocation-free
    // proof below must observe the cached-level fast path the runtime actually runs with.
    let dispatch_level = local_simd::init();
    println!("  {}", local_simd::dispatch_report());

    let g = local_graphs::Family::SparseGnp.generate(10_000, 1);
    let inputs = vec![(); g.node_count()];

    // ---- The allocation-counter proof (runs outside the timed sections). ----
    let view = GraphView::full(&g);
    let steady_state_allocations = assert_allocation_free_steady_state(&view, &inputs);
    println!("  steady-state attempt allocations: {steady_state_allocations} (asserted zero)");

    // ---- The same proof with the observability layer armed: counters hit pre-registered
    // atomics and events land in the pre-sized thread-local buffer (capacity-guarded push,
    // drop-on-overflow), so recording must not reintroduce steady-state allocations. The
    // warm-up inside the assertion registers this thread's track before counting starts.
    local_obs::enable();
    let traced_allocations = assert_allocation_free_steady_state(&view, &inputs);
    local_obs::disable();
    println!(
        "  steady-state attempt allocations with obs enabled: {traced_allocations} (asserted zero)"
    );

    // ---- Driver-dominated workload: the synthetic PS box. ----
    let ps = local_uniform::catalog::uniform_ps_mis();
    let ps_reference = UniformTransformer::new(
        local_uniform::catalog::panconesi_srinivasan_mis_black_box(),
        SeedRulingSetPruning { beta: 1 },
        false,
    );
    let fast = ps.solve(&g, &inputs, 7);
    let reference = ps_reference.solve_rebuild(&g, &inputs, 7);
    assert!(fast.solved);
    assert_eq!(fast.outputs, reference.outputs);
    assert_eq!(fast.rounds, reference.rounds);

    group.bench_function("view_session_ps_mis_n10000", |b| {
        let mut session = local_runtime::Session::new();
        b.iter(|| {
            let run = ps.solve_in(&g, &inputs, 7, &mut session);
            assert!(run.solved);
            run.rounds
        })
    });
    group.bench_function("rebuild_reference_ps_mis_n10000", |b| {
        b.iter(|| {
            let run = ps_reference.solve_rebuild(&g, &inputs, 7);
            assert!(run.solved);
            run.rounds
        })
    });

    // ---- Simulation-dominated workload: the colouring-based MIS box. ----
    let coloring = local_uniform::catalog::uniform_coloring_mis();
    let coloring_reference = UniformTransformer::new(
        local_uniform::catalog::coloring_mis_black_box(),
        SeedRulingSetPruning { beta: 1 },
        false,
    );
    let fast = coloring.solve(&g, &inputs, 7);
    let reference = coloring_reference.solve_rebuild(&g, &inputs, 7);
    assert!(fast.solved);
    assert_eq!(fast.outputs, reference.outputs);
    assert_eq!(fast.rounds, reference.rounds);

    group.bench_function("view_session_coloring_mis_n10000", |b| {
        let mut session = local_runtime::Session::new();
        b.iter(|| {
            let run = coloring.solve_in(&g, &inputs, 7, &mut session);
            assert!(run.solved);
            run.rounds
        })
    });
    group.bench_function("rebuild_reference_coloring_mis_n10000", |b| {
        b.iter(|| {
            let run = coloring_reference.solve_rebuild(&g, &inputs, 7);
            assert!(run.solved);
            run.rounds
        })
    });
    group.finish();

    // ---- Per-kernel microbenches: the portable scalar reference against the dispatched
    // kernels (SSE2/AVX2 on x86_64, selected at startup above), at element counts
    // bracketing the sweep's working sets (10^4 fits in cache, 10^6 streams from memory).
    // Every pair computes identical results — enforced by `crates/simd`'s equivalence
    // tests — so the comparison is pure throughput. ----
    let mut kernels = c.benchmark_group("kernels");
    kernels.sample_size(10).measurement_time(Duration::from_secs(2));
    let mut kernel_json = String::new();
    for &len in &[10_000usize, 1_000_000] {
        let samples: u32 = if len <= 10_000 { 400 } else { 20 };
        let stamps: Vec<u64> =
            (0..len as u64).map(|i| if i.is_multiple_of(3) { 42 } else { i + 100 }).collect();
        let mask: Vec<bool> = (0..len).map(|i| !i.is_multiple_of(17)).collect();
        let nodes: Vec<usize> = (0..len).collect();
        let q = 1_000_003u64; // prime < 2^25: the reciprocal block-Horner regime
        let coeffs: Vec<u64> = (0..8u64).map(|i| (i * 2_654_435_761) % q).collect();
        // (name, scalar closure, dispatched closure) triples, erased to u64 so one loop
        // can time and register them all.
        type KernelFn<'a> = Box<dyn FnMut() -> u64 + 'a>;
        let mut pairs: Vec<(&str, KernelFn<'_>, KernelFn<'_>)> = vec![
            (
                "stamp_match_count",
                Box::new(|| local_simd::scalar::stamp_match_count(&stamps, 42) as u64),
                Box::new(|| local_simd::stamp_match_count(&stamps, 42) as u64),
            ),
            (
                "mask_count_true",
                Box::new(|| local_simd::scalar::mask_count_true(&mask) as u64),
                Box::new(|| local_simd::mask_count_true(&mask) as u64),
            ),
            {
                let (nodes, mask) = (&nodes, &mask);
                let mut a: Vec<usize> = Vec::with_capacity(len);
                let mut b: Vec<usize> = Vec::with_capacity(len);
                (
                    // Includes an identical refill of the scratch vec on both sides.
                    "compact_marked",
                    Box::new(move || {
                        a.clear();
                        a.extend_from_slice(nodes);
                        local_simd::scalar::compact_marked(&mut a, mask);
                        a.len() as u64
                    }),
                    Box::new(move || {
                        b.clear();
                        b.extend_from_slice(nodes);
                        local_simd::compact_marked(&mut b, mask);
                        b.len() as u64
                    }),
                )
            },
            (
                "eval_poly_block8",
                Box::new(|| {
                    (0..len as u64 / 8)
                        .map(|i| local_simd::scalar::eval_poly_block8(&coeffs, i * 8, q)[7])
                        .sum()
                }),
                Box::new(|| {
                    (0..len as u64 / 8)
                        .map(|i| local_simd::eval_poly_block8(&coeffs, i * 8, q)[7])
                        .sum()
                }),
            ),
        ];
        for (name, scalar, dispatched) in &mut pairs {
            assert_eq!(scalar(), dispatched(), "{name}: scalar and dispatched disagree");
            kernels.bench_function(format!("{name}_scalar_n{len}"), |b| {
                b.iter(|| criterion::black_box(scalar()))
            });
            kernels.bench_function(format!("{name}_dispatched_n{len}"), |b| {
                b.iter(|| criterion::black_box(dispatched()))
            });
            let scalar_us = mean_micros(samples, &mut *scalar);
            let dispatched_us = mean_micros(samples, &mut *dispatched);
            kernel_json.push_str(&format!(
                ",\n  \"kernel_{name}_n{len}_scalar_micros\": {scalar_us},\n  \
                 \"kernel_{name}_n{len}_dispatched_micros\": {dispatched_us}"
            ));
        }
    }
    kernels.finish();

    // ---- BENCH_PR7.json: extend the cross-PR perf trajectory with wall times. ----
    let mut session = Session::new();
    let view_session_ps = mean_micros(5, || ps.solve_in(&g, &inputs, 7, &mut session).rounds);
    let rebuild_ps = mean_micros(3, || ps_reference.solve_rebuild(&g, &inputs, 7).rounds);
    let view_session_coloring =
        mean_micros(5, || coloring.solve_in(&g, &inputs, 7, &mut session).rounds);
    let rebuild_coloring =
        mean_micros(3, || coloring_reference.solve_rebuild(&g, &inputs, 7).rounds);
    let json = format!(
        "{{\n  \"bench\": \"alternation_hotpath\",\n  \"n\": 10000,\n  \
         \"simd_dispatch\": \"{}\",\n  \
         \"steady_state_attempt_allocations\": {steady_state_allocations},\n  \
         \"view_session_ps_mis_micros\": {view_session_ps},\n  \
         \"rebuild_reference_ps_mis_micros\": {rebuild_ps},\n  \
         \"view_session_coloring_mis_micros\": {view_session_coloring},\n  \
         \"rebuild_reference_coloring_mis_micros\": {rebuild_coloring}{kernel_json}\n}}\n",
        dispatch_level.name()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR7.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("  wrote {path}"),
        Err(e) => eprintln!("  cannot write {path}: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);

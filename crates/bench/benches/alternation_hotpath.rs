//! The zero-rebuild alternation hot path: the live-view/session driver versus the
//! pre-refactor execution strategy (rebuild-per-prune driver + the seed's ball-based pruning)
//! on doubling-budget uniform MIS runs at n = 10 000.
//!
//! Two black boxes bracket the workload space:
//!
//! * `ps_mis` — the synthetic `2^{O(√log n)}` box (Table 1 row 2). Its attempts charge rounds
//!   without simulating messages, so the measurement isolates the alternation driver itself
//!   (attempt dispatch, pruning, configuration shrinking) — the cost the refactor removes.
//! * `coloring_mis` — the real `O(Δ² + log* m)` colouring pipeline. Attempts simulate every
//!   message, which both paths share, so the gap narrows to the session/runtime savings.
//!
//! All paths produce byte-identical `UniformRun`s (enforced by `local-core`'s rebuild and
//! property tests) — the comparison is pure throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use local_uniform::rebuild::SeedRulingSetPruning;
use local_uniform::transform::UniformTransformer;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("alternation_hotpath");
    group.sample_size(10).measurement_time(Duration::from_secs(5));

    let g = local_graphs::Family::SparseGnp.generate(10_000, 1);
    let inputs = vec![(); g.node_count()];

    // ---- Driver-dominated workload: the synthetic PS box. ----
    let ps = local_uniform::catalog::uniform_ps_mis();
    let ps_reference = UniformTransformer::new(
        local_uniform::catalog::panconesi_srinivasan_mis_black_box(),
        SeedRulingSetPruning { beta: 1 },
        false,
    );
    let fast = ps.solve(&g, &inputs, 7);
    let reference = ps_reference.solve_rebuild(&g, &inputs, 7);
    assert!(fast.solved);
    assert_eq!(fast.outputs, reference.outputs);
    assert_eq!(fast.rounds, reference.rounds);

    group.bench_function("view_session_ps_mis_n10000", |b| {
        let mut session = local_runtime::Session::new();
        b.iter(|| {
            let run = ps.solve_in(&g, &inputs, 7, &mut session);
            assert!(run.solved);
            run.rounds
        })
    });
    group.bench_function("rebuild_reference_ps_mis_n10000", |b| {
        b.iter(|| {
            let run = ps_reference.solve_rebuild(&g, &inputs, 7);
            assert!(run.solved);
            run.rounds
        })
    });

    // ---- Simulation-dominated workload: the colouring-based MIS box. ----
    let coloring = local_uniform::catalog::uniform_coloring_mis();
    let coloring_reference = UniformTransformer::new(
        local_uniform::catalog::coloring_mis_black_box(),
        SeedRulingSetPruning { beta: 1 },
        false,
    );
    let fast = coloring.solve(&g, &inputs, 7);
    let reference = coloring_reference.solve_rebuild(&g, &inputs, 7);
    assert!(fast.solved);
    assert_eq!(fast.outputs, reference.outputs);
    assert_eq!(fast.rounds, reference.rounds);

    group.bench_function("view_session_coloring_mis_n10000", |b| {
        let mut session = local_runtime::Session::new();
        b.iter(|| {
            let run = coloring.solve_in(&g, &inputs, 7, &mut session);
            assert!(run.solved);
            run.rounds
        })
    });
    group.bench_function("rebuild_reference_coloring_mis_n10000", |b| {
        b.iter(|| {
            let run = coloring_reference.solve_rebuild(&g, &inputs, 7);
            assert!(run.solved);
            run.rounds
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

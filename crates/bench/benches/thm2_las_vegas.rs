//! Theorem 2: expected running time of the uniform Las Vegas ruling set.
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem2/las_vegas");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("ruling_set_beta2_n96_mean3", |b| {
        b.iter(|| local_bench::las_vegas_mean_rounds(96, 2, 3))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 1 rows 1–2: deterministic MIS (Δ-based and 2^O(√log n)) — uniform vs non-uniform.
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/mis");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("row1_delta_based_n96", |b| b.iter(|| local_bench::row_mis_delta(96, 1)));
    group.bench_function("row2_sqrt_log_n96", |b| b.iter(|| local_bench::row_mis_sqrt_log(96, 1)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

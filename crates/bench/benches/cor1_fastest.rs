//! Corollary 1(i) / Theorem 4: the fastest-of combinator vs. its components.
use criterion::{criterion_group, criterion_main, Criterion};
use local_graphs::Family;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("corollary1/fastest_of");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for family in [Family::Forest3, Family::Regular6] {
        group.bench_function(format!("combined_vs_components_{}", family.name()), |b| {
            b.iter(|| local_bench::fastest_of_point(family, 96, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 1 rows 6–7: O(Δ)-edge-colouring via the line graph + Theorem 5.
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/edge_coloring");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("rows6_7_regular6_n64", |b| {
        b.iter(|| local_bench::row_edge_coloring(64, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

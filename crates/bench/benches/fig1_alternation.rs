//! Figure 1: the alternating-algorithm execution (guess schedule, budgets, pruning progress).
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1/alternation");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("uniform_mis_trace_n128", |b| {
        b.iter(|| local_bench::alternation_trace(128, 0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

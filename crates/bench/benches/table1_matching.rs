//! Table 1 row 8: deterministic maximal matching (edge-colouring based and synthetic log⁴ n).
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/matching");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("row8_edge_coloring_mm_n96", |b| {
        b.iter(|| local_bench::row_matching(96, 1))
    });
    group.bench_function("row8_log4_mm_n96", |b| b.iter(|| local_bench::row_matching_log4(96, 1)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

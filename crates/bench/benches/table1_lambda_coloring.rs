//! Table 1 row 5: λ(Δ+1)-colouring via Theorem 5 — uniform vs non-uniform.
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/lambda_coloring");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    for lambda in [1u64, 4] {
        group.bench_function(format!("row5_lambda{lambda}_n96"), |b| {
            b.iter(|| local_bench::row_lambda_coloring(96, lambda, 1))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablations over the design choices called out in DESIGN.md §7: guess-schedule base,
//! sequence-number choice for the product bound, and pruning radius β.
use criterion::{criterion_group, criterion_main, Criterion};
use local_graphs::{Family, GraphParams};
use local_uniform::catalog;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10).measurement_time(Duration::from_secs(2));

    // Pruning radius β: larger β prunes more per iteration but costs more per pruning call.
    for beta in [1usize, 2, 4] {
        group.bench_function(format!("ruling_set_pruning_beta{beta}_n96"), |b| {
            b.iter(|| local_bench::row_ruling_set(96, beta, 1))
        });
    }

    // Arboricity product-form set-sequence (log-many guesses) vs. the single-guess additive
    // route through the Δ-based black box on the same sparse instances.
    let g = Family::Forest3.generate(96, 1);
    let n = g.node_count();
    group.bench_function("sparse_mis_product_seqnum", |b| {
        b.iter(|| catalog::uniform_arboricity_mis().solve(&g, &vec![(); n], 0))
    });
    group.bench_function("sparse_mis_additive_seqnum", |b| {
        b.iter(|| catalog::uniform_coloring_mis().solve(&g, &vec![(); n], 0))
    });

    // Correct-guess baseline for reference.
    let p = GraphParams::of(&g);
    group.bench_function("sparse_mis_nonuniform_correct_guesses", |b| {
        b.iter(|| {
            let bx = catalog::arboricity_mis_black_box();
            let algo = (bx.build)(&[p.degeneracy.max(1), p.n, p.max_id]);
            local_runtime::GraphAlgorithm::execute(algo.as_ref(), &g, &vec![(); n], None, 0)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

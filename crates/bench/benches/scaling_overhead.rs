//! Figure-style scaling: the uniform/non-uniform round ratio as n grows.
use criterion::{criterion_group, criterion_main, Criterion};
use local_graphs::Family;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/overhead");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [64usize, 128, 256] {
        group.bench_function(format!("uniform_vs_nonuniform_regular6_n{n}"), |b| {
            b.iter(|| local_bench::scaling_series(&[n], Family::Regular6, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table 1 rows 3–4: arboricity-parameterised MIS — uniform vs non-uniform.
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/arboricity");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("rows3_4_forest_union_n96", |b| {
        b.iter(|| local_bench::row_mis_arboricity(96, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

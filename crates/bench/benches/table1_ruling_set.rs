//! Table 1 rows 9–10: randomized (2,β)-ruling set (Theorem 2) and the uniform Luby baseline.
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1/ruling_set");
    group.sample_size(10).measurement_time(Duration::from_secs(2));
    group.bench_function("row9_ruling_set_beta2_n96", |b| {
        b.iter(|| local_bench::row_ruling_set(96, 2, 1))
    });
    group.bench_function("row10_uniform_luby_n96", |b| {
        b.iter(|| local_bench::row_uniform_luby(96, 1))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

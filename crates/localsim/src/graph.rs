//! Compressed-sparse-row graph representation used by the LOCAL-model runtime.
//!
//! The graph is undirected, simple (no self-loops, no parallel edges) and static for the
//! duration of an execution. Every node carries a unique identity `Id(v)` (the paper's
//! `Id(v)`), which is independent of its position (index) in the adjacency structure.
//!
//! Two views matter for the paper's framework:
//!
//! * the full graph `G` on which the uniform algorithm operates, and
//! * induced subgraphs `G_i` obtained by pruning nodes between iterations of an
//!   [alternating algorithm](https://doi.org/10.1007/s00446-012-0174-8); these are produced by
//!   [`Graph::induced_subgraph`], which preserves node identities so that identity-based
//!   symmetry breaking keeps working across iterations.

use std::collections::BTreeSet;
use std::fmt;

/// Position of a node inside a [`Graph`] (dense, `0..n`).
pub type NodeIndex = usize;

/// Globally unique identity of a node (the paper's `Id(v)`).
///
/// Identities are preserved by [`Graph::induced_subgraph`] and are the only
/// symmetry-breaking information a *uniform* algorithm may rely on.
pub type NodeId = u64;

/// An undirected simple graph in CSR form with per-node identities.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes into `adjacency` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated neighbor lists (by node index).
    adjacency: Vec<NodeIndex>,
    /// For the directed arc stored at `adjacency[k]` (say `u -> v`), `reverse[k]` is the
    /// position in `adjacency` of the arc `v -> u`. Used to translate "sent on port p of u"
    /// into "received on port q of v".
    reverse: Vec<usize>,
    /// Unique identity of each node.
    ids: Vec<NodeId>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

/// Errors produced while building a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node index `>= n`.
    EndpointOutOfRange {
        /// The offending endpoint index.
        endpoint: usize,
        /// Number of nodes in the graph.
        nodes: usize,
    },
    /// A self-loop `(v, v)` was supplied.
    SelfLoop {
        /// The node with the self-loop.
        node: usize,
    },
    /// Two nodes were assigned the same identity.
    DuplicateId {
        /// The duplicated identity.
        id: NodeId,
    },
    /// `ids.len()` did not match the declared number of nodes.
    IdCountMismatch {
        /// Declared number of nodes.
        expected: usize,
        /// Number of identities supplied.
        got: usize,
    },
    /// Prebuilt CSR arrays handed to [`Graph::from_csr`] violated an invariant.
    InvalidCsr {
        /// Which invariant failed.
        detail: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EndpointOutOfRange { endpoint, nodes } => {
                write!(f, "edge endpoint {endpoint} out of range for {nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::DuplicateId { id } => write!(f, "duplicate node identity {id}"),
            GraphError::IdCountMismatch { expected, got } => {
                write!(f, "expected {expected} identities, got {got}")
            }
            GraphError::InvalidCsr { detail } => write!(f, "invalid CSR input: {detail}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// Builds a graph on `n` nodes with identities `0..n` from an edge list.
    ///
    /// Duplicate edges are collapsed; `(u, v)` and `(v, u)` denote the same edge.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range or an edge is a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, GraphError> {
        let ids: Vec<NodeId> = (0..n as u64).collect();
        Self::from_edges_with_ids(n, edges, &ids)
    }

    /// Builds a graph on `n` nodes with explicit identities from an edge list.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if an endpoint is out of range, an edge is a self-loop, the
    /// identity vector has the wrong length, or identities are not unique.
    pub fn from_edges_with_ids(
        n: usize,
        edges: &[(usize, usize)],
        ids: &[NodeId],
    ) -> Result<Self, GraphError> {
        if ids.len() != n {
            return Err(GraphError::IdCountMismatch { expected: n, got: ids.len() });
        }
        {
            let mut seen = BTreeSet::new();
            for &id in ids {
                if !seen.insert(id) {
                    return Err(GraphError::DuplicateId { id });
                }
            }
        }
        let mut unique: BTreeSet<(usize, usize)> = BTreeSet::new();
        for &(u, v) in edges {
            if u >= n {
                return Err(GraphError::EndpointOutOfRange { endpoint: u, nodes: n });
            }
            if v >= n {
                return Err(GraphError::EndpointOutOfRange { endpoint: v, nodes: n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            unique.insert((u.min(v), u.max(v)));
        }

        let mut degree = vec![0usize; n];
        for &(u, v) in &unique {
            degree[u] += 1;
            degree[v] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut adjacency = vec![0usize; offsets[n]];
        let mut cursor = offsets.clone();
        for &(u, v) in &unique {
            adjacency[cursor[u]] = v;
            cursor[u] += 1;
            adjacency[cursor[v]] = u;
            cursor[v] += 1;
        }
        // Neighbor lists are sorted by construction (BTreeSet iteration is ordered and we
        // append in order), except the lists of the *second* endpoints; sort to normalize.
        for v in 0..n {
            adjacency[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        let reverse = Self::compute_reverse(&offsets, &adjacency);
        Ok(Graph { offsets, adjacency, reverse, ids: ids.to_vec() })
    }

    /// Builds a graph (identities `0..n`) directly from prebuilt CSR arrays, skipping the
    /// edge-list round trip entirely — no edge `Vec`, no dedup set, no per-row re-sort.
    ///
    /// This is the constructor behind `local-graphs`' `O(n + m)` direct-CSR generators,
    /// which emit arcs already row-sorted and place each arc's mirror position as they go.
    /// All invariants are validated in `O(n + m)` (cheap linear scans relative to any
    /// generator that could have produced the arrays):
    ///
    /// * `offsets` is monotone, starts at 0, and its last entry equals `adjacency.len()`
    ///   (which must equal `reverse.len()`);
    /// * every row is strictly ascending with endpoints in range and no self-loop;
    /// * `reverse[k]` points at the mirror arc of `adjacency[k]` (which also forces the
    ///   adjacency to be symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidCsr`] naming the violated invariant.
    pub fn from_csr(
        offsets: Vec<usize>,
        adjacency: Vec<NodeIndex>,
        reverse: Vec<usize>,
    ) -> Result<Self, GraphError> {
        let invalid = |detail| Err(GraphError::InvalidCsr { detail });
        if offsets.is_empty() || offsets[0] != 0 {
            return invalid("offsets must start with 0");
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return invalid("offsets must be monotone");
        }
        let n = offsets.len() - 1;
        if *offsets.last().expect("non-empty") != adjacency.len() {
            return invalid("offsets must end at adjacency.len()");
        }
        if reverse.len() != adjacency.len() {
            return invalid("reverse must have one entry per arc");
        }
        for u in 0..n {
            let row = &adjacency[offsets[u]..offsets[u + 1]];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return invalid("rows must be strictly ascending");
            }
            if row.last().is_some_and(|&w| w >= n) {
                return invalid("neighbor index out of range");
            }
            if row.binary_search(&u).is_ok() {
                return invalid("self-loop");
            }
            for k in offsets[u]..offsets[u + 1] {
                let v = adjacency[k];
                let rv = reverse[k];
                if rv < offsets[v] || rv >= offsets[v + 1] || adjacency[rv] != u || reverse[rv] != k
                {
                    return invalid("reverse arc must mirror its arc");
                }
            }
        }
        let ids: Vec<NodeId> = (0..n as u64).collect();
        Ok(Graph { offsets, adjacency, reverse, ids })
    }

    fn compute_reverse(offsets: &[usize], adjacency: &[NodeIndex]) -> Vec<usize> {
        let n = offsets.len() - 1;
        let mut reverse = vec![0usize; adjacency.len()];
        for u in 0..n {
            for k in offsets[u]..offsets[u + 1] {
                let v = adjacency[k];
                // Binary search for u in v's neighbor list (lists are sorted).
                let list = &adjacency[offsets[v]..offsets[v + 1]];
                let pos = list.binary_search(&u).expect("reverse arc must exist");
                reverse[k] = offsets[v] + pos;
            }
        }
        reverse
    }

    /// CSR internals (offsets, adjacency, reverse-arc positions), for the live-view overlay.
    pub(crate) fn csr(&self) -> (&[usize], &[NodeIndex], &[usize]) {
        (&self.offsets, &self.adjacency, &self.reverse)
    }

    /// Number of nodes `n = |V(G)|`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `|E(G)|`.
    pub fn edge_count(&self) -> usize {
        self.adjacency.len() / 2
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Degree of node `v`.
    pub fn degree(&self, v: NodeIndex) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum degree `Δ(G)`; `0` for the empty or edgeless graph.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Identity `Id(v)` of node `v`.
    pub fn id(&self, v: NodeIndex) -> NodeId {
        self.ids[v]
    }

    /// All identities, indexed by node index.
    pub fn ids(&self) -> &[NodeId] {
        &self.ids
    }

    /// Largest identity present in the graph (the paper's parameter `m`), or 0 if empty.
    pub fn max_id(&self) -> NodeId {
        self.ids.iter().copied().max().unwrap_or(0)
    }

    /// Neighbors of `v`, sorted by node index.
    pub fn neighbors(&self, v: NodeIndex) -> &[NodeIndex] {
        &self.adjacency[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The `port`-th neighbor of `v`.
    pub fn neighbor(&self, v: NodeIndex, port: usize) -> NodeIndex {
        self.adjacency[self.offsets[v] + port]
    }

    /// Returns the port at which `v` appears in the neighbor list of its `port`-th neighbor.
    ///
    /// If `w = neighbor(v, port)`, then `neighbor(w, reverse_port(v, port)) == v`.
    pub fn reverse_port(&self, v: NodeIndex, port: usize) -> usize {
        let k = self.offsets[v] + port;
        let w = self.adjacency[k];
        self.reverse[k] - self.offsets[w]
    }

    /// Returns `true` if `u` and `v` are adjacent.
    pub fn has_edge(&self, u: NodeIndex, v: NodeIndex) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeIndex, NodeIndex)> + '_ {
        (0..self.node_count()).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Builds the subgraph induced by the nodes with `keep[v] == true`.
    ///
    /// Node identities are preserved. Returns the subgraph together with the mapping from the
    /// new node indices back to the original node indices.
    ///
    /// This is the operation performed between iterations of an alternating algorithm: the
    /// pruning algorithm removes the pruned set `W` and the next algorithm runs on `G[V \ W]`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeIndex>) {
        assert_eq!(keep.len(), self.node_count(), "keep mask must cover every node");
        let mut new_index = vec![usize::MAX; self.node_count()];
        let mut back = Vec::new();
        for v in 0..self.node_count() {
            if keep[v] {
                new_index[v] = back.len();
                back.push(v);
            }
        }
        let mut edges = Vec::new();
        for (u, v) in self.edges() {
            if keep[u] && keep[v] {
                edges.push((new_index[u], new_index[v]));
            }
        }
        let ids: Vec<NodeId> = back.iter().map(|&v| self.ids[v]).collect();
        let sub = Graph::from_edges_with_ids(back.len(), &edges, &ids)
            .expect("induced subgraph of a valid graph is valid");
        (sub, back)
    }

    /// Breadth-first distances from `source`; unreachable nodes get `usize::MAX`.
    pub fn bfs_distances(&self, source: NodeIndex) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &w in self.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The set of nodes at distance at most `r` from `v` (the ball `B_G(v, r)`), including `v`.
    pub fn ball(&self, v: NodeIndex, r: usize) -> Vec<NodeIndex> {
        let mut dist = vec![usize::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        let mut out = vec![v];
        dist[v] = 0;
        queue.push_back(v);
        while let Some(u) = queue.pop_front() {
            if dist[u] == r {
                continue;
            }
            for &w in self.neighbors(u) {
                if dist[w] == usize::MAX {
                    dist[w] = dist[u] + 1;
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Builds the line graph `L(G)`: one node per edge of `G`, two line-graph nodes adjacent
    /// when the corresponding edges share an endpoint.
    ///
    /// Returns the line graph and, for each line-graph node, the original edge it represents.
    /// Line-graph node identities are derived deterministically from the endpoint identities
    /// so that they are unique and reproducible.
    pub fn line_graph(&self) -> (Graph, Vec<(NodeIndex, NodeIndex)>) {
        let edges: Vec<(NodeIndex, NodeIndex)> = self.edges().collect();
        let mut edge_index = std::collections::HashMap::new();
        for (i, &e) in edges.iter().enumerate() {
            edge_index.insert(e, i);
        }
        let mut line_edges = Vec::new();
        for v in 0..self.node_count() {
            let nbrs = self.neighbors(v);
            for a in 0..nbrs.len() {
                for b in (a + 1)..nbrs.len() {
                    let e1 = (v.min(nbrs[a]), v.max(nbrs[a]));
                    let e2 = (v.min(nbrs[b]), v.max(nbrs[b]));
                    line_edges.push((edge_index[&e1], edge_index[&e2]));
                }
            }
        }
        // Identity of edge (u, v): pair the endpoint identities (Cantor-style packing keeps
        // them unique because endpoint identities are unique).
        let ids: Vec<NodeId> = edges
            .iter()
            .map(|&(u, v)| {
                let (a, b) = (self.ids[u].min(self.ids[v]), self.ids[u].max(self.ids[v]));
                a.wrapping_mul(1_000_003).wrapping_add(b)
            })
            .collect();
        // Packing could collide for adversarial identities; fall back to index-based ids then.
        let unique: BTreeSet<_> = ids.iter().collect();
        let ids = if unique.len() == ids.len() { ids } else { (0..edges.len() as u64).collect() };
        let lg = Graph::from_edges_with_ids(edges.len(), &line_edges, &ids)
            .expect("line graph of a valid graph is valid");
        (lg, edges)
    }

    /// Connected components; returns a component label per node and the number of components.
    pub fn connected_components(&self) -> (Vec<usize>, usize) {
        let mut label = vec![usize::MAX; self.node_count()];
        let mut count = 0;
        for s in 0..self.node_count() {
            if label[s] != usize::MAX {
                continue;
            }
            let mut queue = std::collections::VecDeque::new();
            label[s] = count;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &w in self.neighbors(u) {
                    if label[w] == usize::MAX {
                        label[w] = count;
                        queue.push_back(w);
                    }
                }
            }
            count += 1;
        }
        (label, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap()
    }

    #[test]
    fn builds_triangle() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        assert!(g.has_edge(0, 2));
        assert!(!g.is_empty());
    }

    #[test]
    fn rejects_self_loop() {
        assert!(matches!(Graph::from_edges(2, &[(0, 0)]), Err(GraphError::SelfLoop { node: 0 })));
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::EndpointOutOfRange { endpoint: 5, nodes: 2 })
        ));
    }

    #[test]
    fn rejects_duplicate_ids() {
        assert!(matches!(
            Graph::from_edges_with_ids(2, &[(0, 1)], &[7, 7]),
            Err(GraphError::DuplicateId { id: 7 })
        ));
    }

    #[test]
    fn rejects_id_count_mismatch() {
        assert!(matches!(
            Graph::from_edges_with_ids(3, &[(0, 1)], &[1, 2]),
            Err(GraphError::IdCountMismatch { expected: 3, got: 2 })
        ));
    }

    #[test]
    fn collapses_duplicate_edges() {
        let g = Graph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn from_csr_accepts_what_from_edges_builds() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap();
        let rebuilt =
            Graph::from_csr(g.offsets.clone(), g.adjacency.clone(), g.reverse.clone()).unwrap();
        assert_eq!(rebuilt, g);
        let empty = Graph::from_csr(vec![0], vec![], vec![]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn from_csr_rejects_malformed_inputs() {
        let detail = |r: Result<Graph, GraphError>| match r {
            Err(GraphError::InvalidCsr { detail }) => detail,
            other => panic!("expected InvalidCsr, got {other:?}"),
        };
        assert_eq!(detail(Graph::from_csr(vec![], vec![], vec![])), "offsets must start with 0");
        assert_eq!(
            detail(Graph::from_csr(vec![0, 2, 1], vec![1, 0, 0], vec![2, 1, 0])),
            "offsets must be monotone"
        );
        assert_eq!(
            detail(Graph::from_csr(vec![0, 1, 3], vec![1, 0], vec![1, 0])),
            "offsets must end at adjacency.len()"
        );
        assert_eq!(
            detail(Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![1])),
            "reverse must have one entry per arc"
        );
        assert_eq!(
            detail(Graph::from_csr(vec![0, 2, 3, 4], vec![2, 1, 0, 0], vec![3, 2, 1, 0])),
            "rows must be strictly ascending"
        );
        assert_eq!(
            detail(Graph::from_csr(vec![0, 1, 2], vec![5, 0], vec![1, 0])),
            "neighbor index out of range"
        );
        assert_eq!(detail(Graph::from_csr(vec![0, 1], vec![0], vec![0])), "self-loop");
        assert_eq!(
            detail(Graph::from_csr(vec![0, 1, 2], vec![1, 0], vec![0, 1])),
            "reverse arc must mirror its arc"
        );
    }

    #[test]
    fn reverse_ports_are_consistent() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]).unwrap();
        for v in 0..g.node_count() {
            for port in 0..g.degree(v) {
                let w = g.neighbor(v, port);
                let back = g.reverse_port(v, port);
                assert_eq!(g.neighbor(w, back), v);
            }
        }
    }

    #[test]
    fn induced_subgraph_preserves_ids_and_edges() {
        let g = Graph::from_edges_with_ids(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], &[10, 20, 30, 40])
            .unwrap();
        let (sub, back) = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(back, vec![0, 2, 3]);
        assert_eq!(sub.ids(), &[10, 30, 40]);
        // Edges 2-3 and 3-0 survive, edge 0-1 and 1-2 vanish.
        assert_eq!(sub.edge_count(), 2);
        assert!(sub.has_edge(1, 2)); // old 2-3
        assert!(sub.has_edge(0, 2)); // old 0-3
        assert!(!sub.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_of_nothing_is_empty() {
        let g = triangle();
        let (sub, back) = g.induced_subgraph(&[false, false, false]);
        assert!(sub.is_empty());
        assert!(back.is_empty());
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ball_on_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(g.ball(2, 1), vec![1, 2, 3]);
        assert_eq!(g.ball(2, 2), vec![0, 1, 2, 3, 4]);
        assert_eq!(g.ball(0, 0), vec![0]);
    }

    #[test]
    fn line_graph_of_path() {
        // Path 0-1-2-3 has 3 edges; its line graph is a path on 3 nodes.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let (lg, edges) = g.line_graph();
        assert_eq!(lg.node_count(), 3);
        assert_eq!(lg.edge_count(), 2);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn line_graph_of_star() {
        // Star K_{1,3}: line graph is a triangle.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]).unwrap();
        let (lg, _) = g.line_graph();
        assert_eq!(lg.node_count(), 3);
        assert_eq!(lg.edge_count(), 3);
    }

    #[test]
    fn connected_components_counts() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let (labels, count) = g.connected_components();
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
    }

    #[test]
    fn max_id_and_ids() {
        let g = Graph::from_edges_with_ids(3, &[(0, 1)], &[5, 99, 7]).unwrap();
        assert_eq!(g.max_id(), 99);
        assert_eq!(g.id(1), 99);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(g.is_empty());
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.max_id(), 0);
    }
}

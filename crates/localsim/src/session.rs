//! Reusable execution sessions and the frontier-driven round loop.
//!
//! The alternating drivers of the paper run the same black box dozens of times with doubling
//! budgets; allocating programs, RNG streams, inboxes, and bookkeeping arrays from scratch for
//! every attempt dominates the cost of short attempts. A [`Session`] owns that per-node state
//! and is reset — not reallocated — between attempts; callers (the transformers, the engine's
//! worker threads) keep one session alive across a whole alternation run or grid shard.
//!
//! The round loop itself is frontier-driven: it iterates an *active worklist* of non-halted
//! nodes (in the synchronous LOCAL model every non-halted node takes a step each round, so the
//! frontier is exactly the non-halted set) and touches only the inboxes that actually received
//! messages, instead of scanning all `n` nodes and `n` inboxes per round. Iteration order is
//! ascending node index — identical to the dense scan — so executions are byte-identical to
//! the classic [`crate::runner::run`] loop.

use crate::graph::{Graph, NodeId};
use crate::program::{Action, Incoming, NodeInit, NodeProgram, ProgramSpec, RoundCtx};
use crate::rng::node_rng;
use crate::runner::{Execution, RunConfig};
use crate::trace::{ExecutionTrace, RoundTrace};
use crate::view::GraphView;
use rand_chacha::ChaCha8Rng;
use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Read access to a communication topology, as needed by the round loop.
///
/// The loop addresses nodes two ways: by dense *node index* (`0..node_count()`, what the
/// caller's input/output vectors use) and by *slot* — the index space message buffers live in.
/// For a [`Graph`] the two coincide; for a [`GraphView`] the slot is the node's base index,
/// which makes every adjacency access a flat segment read (no per-message translation back to
/// live indices). The loop is monomorphized per topology, so full-graph runs pay no view
/// overhead.
pub trait Topology {
    /// Number of (live) nodes.
    fn node_count(&self) -> usize;
    /// Size of the slot space (message buffers are sized to this).
    fn slot_count(&self) -> usize;
    /// The slot of node `v` (identity for graphs, base index for views).
    fn slot(&self, v: usize) -> usize;
    /// Identity of node `v`.
    fn id(&self, v: usize) -> NodeId;
    /// Degree of the node in slot `s`.
    fn slot_degree(&self, s: usize) -> usize;
    /// The slot of the `port`-th neighbor of the node in slot `s`.
    fn slot_neighbor(&self, s: usize, port: usize) -> usize;
    /// The port at which slot `s` appears in the neighbor list of its `port`-th neighbor.
    fn slot_reverse_port(&self, s: usize, port: usize) -> usize;
    /// Identities of the neighbors of node `v`, in port order.
    fn neighbor_ids(&self, v: usize) -> Vec<NodeId>;
}

impl Topology for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }
    fn slot_count(&self) -> usize {
        Graph::node_count(self)
    }
    fn slot(&self, v: usize) -> usize {
        v
    }
    fn id(&self, v: usize) -> NodeId {
        Graph::id(self, v)
    }
    fn slot_degree(&self, s: usize) -> usize {
        Graph::degree(self, s)
    }
    fn slot_neighbor(&self, s: usize, port: usize) -> usize {
        Graph::neighbor(self, s, port)
    }
    fn slot_reverse_port(&self, s: usize, port: usize) -> usize {
        Graph::reverse_port(self, s, port)
    }
    fn neighbor_ids(&self, v: usize) -> Vec<NodeId> {
        self.neighbors(v).iter().map(|&w| Graph::id(self, w)).collect()
    }
}

impl Topology for GraphView<'_> {
    fn node_count(&self) -> usize {
        GraphView::node_count(self)
    }
    fn slot_count(&self) -> usize {
        GraphView::slot_count(self)
    }
    fn slot(&self, v: usize) -> usize {
        self.base_index(v)
    }
    fn id(&self, v: usize) -> NodeId {
        GraphView::id(self, v)
    }
    fn slot_degree(&self, s: usize) -> usize {
        GraphView::slot_degree(self, s)
    }
    fn slot_neighbor(&self, s: usize, port: usize) -> usize {
        GraphView::slot_neighbor(self, s, port)
    }
    fn slot_reverse_port(&self, s: usize, port: usize) -> usize {
        GraphView::slot_reverse_port(self, s, port)
    }
    fn neighbor_ids(&self, v: usize) -> Vec<NodeId> {
        let s = self.base_index(v);
        self.slot_neighbors(s).iter().map(|&w| self.base().id(w)).collect()
    }
}

/// Double-buffered inboxes for one message type, pooled across runs by [`Session`].
struct InboxBuffers<M> {
    cur: Vec<Vec<Incoming<M>>>,
    next: Vec<Vec<Incoming<M>>>,
}

impl<M> InboxBuffers<M> {
    fn new() -> Self {
        InboxBuffers { cur: Vec::new(), next: Vec::new() }
    }

    /// Resizes to `n` slots and clears any stale content (capacities are kept warm).
    fn reset(&mut self, n: usize) {
        self.cur.iter_mut().for_each(Vec::clear);
        self.next.iter_mut().for_each(Vec::clear);
        self.cur.resize_with(n, Vec::new);
        self.next.resize_with(n, Vec::new);
    }
}

/// Reusable per-node execution state: RNG streams, halt/termination bookkeeping, the active
/// worklist, and a pool of typed inbox buffers.
///
/// A session is cheap to create but pays off when reused: every buffer is reset in place
/// between runs, so consecutive attempts of an alternation (or consecutive cells of a sweep
/// shard) allocate almost nothing.
#[derive(Default)]
pub struct Session {
    rngs: Vec<ChaCha8Rng>,
    halted: Vec<bool>,
    termination: Vec<u64>,
    active: Vec<usize>,
    has_next: Vec<bool>,
    touched_prev: Vec<usize>,
    touched_now: Vec<usize>,
    inbox_pool: HashMap<TypeId, Box<dyn Any>>,
    /// Materialized-subgraph cache for composite algorithms without a view-native path,
    /// keyed by the view's content epoch (equal epoch ⇒ structurally identical view).
    materialized: Option<(u64, Graph)>,
}

impl Session {
    /// A fresh session with empty buffers.
    pub fn new() -> Self {
        Session::default()
    }

    /// The materialization of `view`, cached by content epoch: repeated attempts on an
    /// unchanged configuration (the common case between prunings) copy the subgraph once, not
    /// once per attempt. Used by the default [`crate::algorithm::GraphAlgorithm::execute_view`].
    pub fn materialized_graph(&mut self, view: &GraphView<'_>) -> &Graph {
        let epoch = view.epoch();
        if self.materialized.as_ref().is_none_or(|&(cached, _)| cached != epoch) {
            let (graph, _back) = view.materialize();
            self.materialized = Some((epoch, graph));
        }
        &self.materialized.as_ref().expect("cache filled above").1
    }

    fn take_inboxes<M: 'static>(&mut self, n: usize) -> Box<InboxBuffers<M>> {
        let mut buffers = self
            .inbox_pool
            .remove(&TypeId::of::<M>())
            .and_then(|b| b.downcast::<InboxBuffers<M>>().ok())
            .unwrap_or_else(|| Box::new(InboxBuffers::new()));
        buffers.reset(n);
        buffers
    }

    fn put_inboxes<M: 'static>(&mut self, buffers: Box<InboxBuffers<M>>) {
        self.inbox_pool.insert(TypeId::of::<M>(), buffers);
    }
}

/// Runs `spec` over `view` with the session's reusable buffers.
///
/// For the same alive set, seed, and spec this is byte-identical to materializing the view
/// with [`GraphView::materialize`] and calling [`crate::runner::run`] on the result: node
/// indexing, port numbering, message order, and the identity-derived RNG streams all agree.
///
/// # Panics
///
/// Panics if `inputs.len() != view.node_count()`.
pub fn run_view<S: ProgramSpec>(
    view: &GraphView<'_>,
    inputs: &[S::Input],
    spec: &S,
    cfg: &RunConfig,
    session: &mut Session,
) -> Execution<S::Output> {
    run_core(view, inputs, spec, cfg, session)
}

/// The shared round loop; monomorphized over the topology (graph or view).
pub(crate) fn run_core<T: Topology, S: ProgramSpec>(
    topo: &T,
    inputs: &[S::Input],
    spec: &S,
    cfg: &RunConfig,
    session: &mut Session,
) -> Execution<S::Output> {
    let n = topo.node_count();
    let slots = topo.slot_count();
    assert_eq!(inputs.len(), n, "one input per node is required");

    let inits: Vec<NodeInit<S::Input>> = (0..n)
        .map(|v| NodeInit {
            index: v,
            id: topo.id(v),
            degree: topo.slot_degree(topo.slot(v)),
            neighbor_ids: topo.neighbor_ids(v),
            input: inputs[v].clone(),
        })
        .collect();
    let mut programs: Vec<S::Prog> = inits.iter().map(|init| spec.build(init)).collect();

    session.rngs.clear();
    session.rngs.extend((0..n).map(|v| node_rng(cfg.seed, topo.id(v))));
    session.halted.clear();
    session.halted.resize(n, false);
    session.termination.clear();
    session.termination.resize(n, 0);
    session.active.clear();
    session.active.extend(0..n);
    session.has_next.clear();
    session.has_next.resize(slots, false);
    session.touched_prev.clear();
    session.touched_now.clear();
    let mut inboxes = session.take_inboxes::<S::Msg>(slots);

    let mut outputs: Vec<Option<S::Output>> = vec![None; n];
    let mut messages: u64 = 0;
    let mut trace = cfg.record_trace.then(ExecutionTrace::default);

    let limit = cfg.max_rounds.unwrap_or(cfg.hard_cap).min(cfg.hard_cap);
    let mut rounds_executed = 0u64;
    let mut active_count = n;
    let mut outbox: Vec<(usize, S::Msg)> = Vec::new();

    let mut round: u64 = 0;
    while active_count > 0 && round < limit {
        let mut delivered_this_round = 0u64;
        let mut any_halt = false;
        for idx in 0..session.active.len() {
            let v = session.active[idx];
            let s = topo.slot(v);
            outbox.clear();
            let action = {
                let mut ctx = RoundCtx {
                    round,
                    degree: topo.slot_degree(s),
                    inbox: &inboxes.cur[s],
                    outbox: &mut outbox,
                    rng: &mut session.rngs[v],
                };
                programs[v].round(&mut ctx)
            };
            for (port, msg) in outbox.drain(..) {
                let w = topo.slot_neighbor(s, port);
                let arrival_port = topo.slot_reverse_port(s, port);
                if !session.has_next[w] {
                    session.has_next[w] = true;
                    session.touched_now.push(w);
                }
                inboxes.next[w].push(Incoming { port: arrival_port, msg });
                delivered_this_round += 1;
            }
            if let Action::Halt(out) = action {
                outputs[v] = Some(out);
                // Halting during round r means the node used r communication rounds.
                session.termination[v] = round;
                session.halted[v] = true;
                active_count -= 1;
                any_halt = true;
            }
        }
        messages += delivered_this_round;
        // Only inboxes that held or received messages are touched (not all n).
        for &v in &session.touched_prev {
            inboxes.cur[v].clear();
        }
        for &w in &session.touched_now {
            std::mem::swap(&mut inboxes.cur[w], &mut inboxes.next[w]);
            session.has_next[w] = false;
        }
        std::mem::swap(&mut session.touched_prev, &mut session.touched_now);
        session.touched_now.clear();
        if any_halt {
            let halted = &session.halted;
            session.active.retain(|&v| !halted[v]);
        }
        round += 1;
        rounds_executed = round;
        if let Some(t) = trace.as_mut() {
            t.rounds.push(RoundTrace {
                round: round - 1,
                active_nodes: active_count,
                messages: delivered_this_round,
            });
        }
    }
    programs.clear();

    let completed = active_count == 0;
    // Force outputs of nodes that never halted and charge them the full execution length.
    let cut_off_at = rounds_executed;
    let outputs: Vec<S::Output> = outputs
        .into_iter()
        .enumerate()
        .map(|(v, o)| o.unwrap_or_else(|| spec.default_output(&inits[v])))
        .collect();
    let termination: Vec<u64> = session
        .termination
        .iter()
        .zip(session.halted.iter())
        .map(|(&t, &h)| if h { t } else { cut_off_at })
        .collect();
    let halted = session.halted.clone();
    let rounds = termination.iter().copied().max().unwrap_or(0);

    for &v in &session.touched_prev {
        inboxes.cur[v].clear();
    }
    session.touched_prev.clear();
    session.put_inboxes(inboxes);

    Execution { outputs, rounds, termination, halted, messages, completed, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    /// Gossip spec: flood identities, output the max seen after `radius` rounds.
    struct MaxIdSpec {
        radius: u64,
    }
    struct MaxIdProg {
        radius: u64,
        best: u64,
    }
    impl NodeProgram for MaxIdProg {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) -> Action<u64> {
            for m in ctx.inbox() {
                self.best = self.best.max(m.msg);
            }
            if ctx.round() == self.radius {
                return Action::Halt(self.best);
            }
            ctx.broadcast(self.best);
            Action::Continue
        }
    }
    impl ProgramSpec for MaxIdSpec {
        type Input = ();
        type Msg = u64;
        type Output = u64;
        type Prog = MaxIdProg;
        fn build(&self, init: &NodeInit<()>) -> MaxIdProg {
            MaxIdProg { radius: self.radius, best: init.id }
        }
        fn default_output(&self, _init: &NodeInit<()>) -> u64 {
            0
        }
    }

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn view_run_matches_graph_run_on_full_view() {
        let g = path(8);
        let cfg = RunConfig::seeded(3).with_trace();
        let reference = run(&g, &[(); 8], &MaxIdSpec { radius: 3 }, &cfg);
        let view = GraphView::full(&g);
        let mut session = Session::new();
        let via_view = run_view(&view, &[(); 8], &MaxIdSpec { radius: 3 }, &cfg, &mut session);
        assert_eq!(via_view.outputs, reference.outputs);
        assert_eq!(via_view.rounds, reference.rounds);
        assert_eq!(via_view.messages, reference.messages);
        assert_eq!(via_view.termination, reference.termination);
        assert_eq!(via_view.trace.unwrap().rounds.len(), reference.trace.unwrap().rounds.len());
    }

    #[test]
    fn view_run_matches_materialized_subgraph_run() {
        let g = path(10);
        let keep: Vec<bool> = (0..10).map(|v| v != 3 && v != 7).collect();
        let (sub, _back) = g.induced_subgraph(&keep);
        let cfg = RunConfig::seeded(11);
        let reference = run(&sub, &vec![(); sub.node_count()], &MaxIdSpec { radius: 4 }, &cfg);
        let view = GraphView::with_mask(&g, &keep);
        let mut session = Session::new();
        let via_view = run_view(
            &view,
            &vec![(); view.node_count()],
            &MaxIdSpec { radius: 4 },
            &cfg,
            &mut session,
        );
        assert_eq!(via_view.outputs, reference.outputs);
        assert_eq!(via_view.rounds, reference.rounds);
        assert_eq!(via_view.messages, reference.messages);
    }

    #[test]
    fn session_reuse_across_runs_is_clean() {
        let g = path(6);
        let view = GraphView::full(&g);
        let mut session = Session::new();
        let cfg = RunConfig::seeded(0);
        let first = run_view(&view, &[(); 6], &MaxIdSpec { radius: 2 }, &cfg, &mut session);
        let second = run_view(&view, &[(); 6], &MaxIdSpec { radius: 2 }, &cfg, &mut session);
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(first.messages, second.messages);
        // A run over a shrunken view after a big one must not see stale state.
        let mut small = GraphView::full(&g);
        small.retain(&[true, true, true, false, false, false]);
        let shrunk = run_view(&small, &[(); 3], &MaxIdSpec { radius: 2 }, &cfg, &mut session);
        assert_eq!(shrunk.outputs.len(), 3);
        assert_eq!(shrunk.outputs, vec![2, 2, 2]);
    }
}

//! Reusable execution sessions and the frontier-driven round loop.
//!
//! The alternating drivers of the paper run the same black box dozens of times with doubling
//! budgets; allocating programs, RNG streams, inboxes, and bookkeeping arrays from scratch for
//! every attempt dominates the cost of short attempts. A [`Session`] owns that per-node state
//! and is reset — not reallocated — between attempts; callers (the transformers, the engine's
//! worker threads) keep one session alive across a whole alternation run or grid shard.
//!
//! The round loop itself is frontier-driven: it iterates an *active worklist* of non-halted
//! nodes (in the synchronous LOCAL model every non-halted node takes a step each round, so the
//! frontier is exactly the non-halted set) and touches only the inboxes that actually received
//! messages, instead of scanning all `n` nodes and `n` inboxes per round. Iteration order is
//! ascending node index — identical to the dense scan — so executions are byte-identical to
//! the classic [`crate::runner::run`] loop.

use crate::graph::{Graph, NodeId};
use crate::program::{Action, Incoming, NodeInit, NodeProgram, ProgramSpec, RoundCtx};

use crate::runner::{Execution, RunConfig};
use crate::trace::{ExecutionTrace, RoundTrace};
use crate::view::GraphView;
use rand_chacha::ChaCha8Rng;
use std::any::{Any, TypeId};
use std::collections::HashMap;

/// Read access to a communication topology, as needed by the round loop.
///
/// The loop addresses nodes two ways: by dense *node index* (`0..node_count()`, what the
/// caller's input/output vectors use) and by *slot* — the index space message buffers live in.
/// For a [`Graph`] the two coincide; for a [`GraphView`] the slot is the node's base index,
/// which makes every adjacency access a flat segment read (no per-message translation back to
/// live indices). The loop is monomorphized per topology, so full-graph runs pay no view
/// overhead.
pub trait Topology {
    /// Number of (live) nodes.
    fn node_count(&self) -> usize;
    /// The slot of node `v` (identity for graphs, base index for views).
    fn slot(&self, v: usize) -> usize;
    /// The node index of the node in slot `s` (inverse of [`Topology::slot`]).
    fn slot_node(&self, s: usize) -> usize;
    /// Identity of node `v`.
    fn id(&self, v: usize) -> NodeId;
    /// Identity of the node in slot `s`.
    fn slot_id(&self, s: usize) -> NodeId;
    /// Degree of the node in slot `s`.
    fn slot_degree(&self, s: usize) -> usize;
    /// The slot of the `port`-th neighbor of the node in slot `s`.
    fn slot_neighbor(&self, s: usize, port: usize) -> usize;
    /// The port at which slot `s` appears in the neighbor list of its `port`-th neighbor.
    fn slot_reverse_port(&self, s: usize, port: usize) -> usize;
    /// A token identifying the topology's *content*, if it has one: equal tokens guarantee a
    /// structurally identical topology (same nodes, identities, ports). The session keys its
    /// frozen [`NodeInit`] slab on this, so repeated runs over an unchanged [`GraphView`]
    /// (whose epoch this is) skip the per-node init construction entirely. `None` means
    /// "uncacheable — rebuild the slab every run" (plain graphs carry no epoch).
    fn content_epoch(&self) -> Option<u64>;
}

impl Topology for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }
    fn slot(&self, v: usize) -> usize {
        v
    }
    fn slot_node(&self, s: usize) -> usize {
        s
    }
    fn id(&self, v: usize) -> NodeId {
        Graph::id(self, v)
    }
    fn slot_id(&self, s: usize) -> NodeId {
        Graph::id(self, s)
    }
    fn slot_degree(&self, s: usize) -> usize {
        Graph::degree(self, s)
    }
    fn slot_neighbor(&self, s: usize, port: usize) -> usize {
        Graph::neighbor(self, s, port)
    }
    fn slot_reverse_port(&self, s: usize, port: usize) -> usize {
        Graph::reverse_port(self, s, port)
    }
    fn content_epoch(&self) -> Option<u64> {
        None
    }
}

impl Topology for GraphView<'_> {
    fn node_count(&self) -> usize {
        GraphView::node_count(self)
    }
    fn slot(&self, v: usize) -> usize {
        self.base_index(v)
    }
    fn slot_node(&self, s: usize) -> usize {
        self.live_index_of(s)
    }
    fn id(&self, v: usize) -> NodeId {
        GraphView::id(self, v)
    }
    fn slot_id(&self, s: usize) -> NodeId {
        self.base().id(s)
    }
    fn slot_degree(&self, s: usize) -> usize {
        GraphView::slot_degree(self, s)
    }
    fn slot_neighbor(&self, s: usize, port: usize) -> usize {
        GraphView::slot_neighbor(self, s, port)
    }
    fn slot_reverse_port(&self, s: usize, port: usize) -> usize {
        GraphView::slot_reverse_port(self, s, port)
    }
    fn content_epoch(&self) -> Option<u64> {
        Some(self.epoch())
    }
}

/// Frozen per-node init data of one topology content: identities, degrees, one flat arena
/// of neighbor identities, and the precomputed message-routing table
/// (`offsets[v]..offsets[v + 1]` is node `v`'s port-ordered *dense arc* segment). Built once
/// per `(session, content epoch)`; repeated attempts on an unchanged [`GraphView`] hand out
/// `NodeInit`s that *borrow* these slabs instead of allocating one `neighbor_ids` vector per
/// node per attempt, and the round loop routes every message through `arrival_arc` without
/// touching the topology at all.
#[derive(Debug, Default)]
struct InitSlab {
    /// The content epoch the slab was built from; `None` marks an epoch-less build that is
    /// never reused (see [`Topology::content_epoch`]).
    key: Option<u64>,
    ids: Vec<NodeId>,
    /// Dense arc offsets: node `v`'s ports occupy arcs `offsets[v]..offsets[v + 1]`; the
    /// degree is the segment width, so no separate degree array is kept. Stored as `u32`
    /// (rebuild asserts the arc count fits), halving the slab's routing footprint.
    offsets: Vec<u32>,
    neighbor_ids: Vec<NodeId>,
    /// Per arc `offsets[v] + p`: the arc cell a message sent by `v` on port `p` lands in
    /// (the receiver's segment base plus the arrival port) — message routing becomes one
    /// contiguous read and one indexed write.
    arrival_arc: Vec<u32>,
}

impl InitSlab {
    /// Refills the slab from `topo`, reusing the buffers' capacity.
    fn rebuild<T: Topology>(&mut self, topo: &T) {
        self.key = topo.content_epoch();
        self.ids.clear();
        self.offsets.clear();
        self.neighbor_ids.clear();
        self.offsets.push(0);
        for v in 0..topo.node_count() {
            let s = topo.slot(v);
            let degree = topo.slot_degree(s);
            self.ids.push(topo.id(v));
            for port in 0..degree {
                self.neighbor_ids.push(topo.slot_id(topo.slot_neighbor(s, port)));
            }
            let arcs = u32::try_from(self.neighbor_ids.len())
                .expect("arc count exceeds the u32 arena limit");
            self.offsets.push(arcs);
        }
        // Second pass (offsets are complete now): freeze the routing table.
        self.arrival_arc.clear();
        for v in 0..topo.node_count() {
            let s = topo.slot(v);
            for port in 0..self.degree(v) {
                let w = topo.slot_node(topo.slot_neighbor(s, port));
                self.arrival_arc.push(self.offsets[w] + topo.slot_reverse_port(s, port) as u32);
            }
        }
    }

    /// Total number of (live) arcs — the message arenas' length.
    fn arc_count(&self) -> usize {
        *self.offsets.last().unwrap_or(&0) as usize
    }

    /// Degree of node `v` (its dense-arc segment width).
    fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Port-ordered neighbor identities of node `v`.
    fn neighbors(&self, v: usize) -> &[NodeId] {
        &self.neighbor_ids[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }
}

/// The flat, tick-stamped message arena for one message type, pooled across runs by
/// [`Session`].
///
/// One cell per *arc* of the (base) graph, split structure-of-arrays into a stamp plane and
/// a payload plane: a message sent to slot `w`'s port `p` in round `r` writes `tick(r)` and
/// the payload into cell `arc_base(w) + p` of the round's write arena; the receiver reads
/// its contiguous cell segment in round `r + 1` and accepts exactly the cells stamped
/// `tick(r)` (a dense `u64` scan served by the `local-simd` stamp kernels). Two arenas alternate by round parity so a
/// same-round send can never overwrite a message the receiver has not read yet (each arc
/// has one sender, so a cell is rewritten at the earliest two rounds after it was written —
/// strictly after its read round). Ticks grow monotonically across rounds *and runs* (with
/// a gap between runs), so stale cells never match and nothing is ever cleared or swapped —
/// the per-message cost drops to one indexed write, and the per-round bookkeeping of the
/// previous inbox design (touched lists, buffer swaps, clears) disappears entirely.
struct MsgBuffers<M> {
    /// Tick stamp per arc, one arena per round parity; `stamp == 0` marks a never-written
    /// cell (ticks start at 1). Kept separate from the payloads so the per-node inbox scan
    /// is a dense `u64` pass the `local-simd` stamp kernels handle in 2–4 lanes per
    /// instruction, instead of a strided walk over `(u64, Option<M>)` pairs.
    stamps: [Vec<u64>; 2],
    /// Message payload per arc, parallel to `stamps`.
    payloads: [Vec<Option<M>>; 2],
    /// The inbox staging buffer served to the running node (port-ascending).
    inbox: Vec<Incoming<M>>,
    /// The outbox staging buffer handed to the running node.
    outbox: Vec<(usize, M)>,
}

impl<M> MsgBuffers<M> {
    fn new() -> Self {
        MsgBuffers {
            stamps: [Vec::new(), Vec::new()],
            payloads: [Vec::new(), Vec::new()],
            inbox: Vec::new(),
            outbox: Vec::new(),
        }
    }

    /// Grows the arenas to `arcs` cells (never shrinks — capacities stay warm) and clears the
    /// staging buffers. Stale cells need no reset: their stamps can never match a fresh tick.
    fn reset(&mut self, arcs: usize) {
        for arena in &mut self.stamps {
            if arena.len() < arcs {
                arena.resize(arcs, 0);
            }
        }
        for arena in &mut self.payloads {
            if arena.len() < arcs {
                arena.resize_with(arcs, || None);
            }
        }
        self.inbox.clear();
        self.outbox.clear();
    }
}

/// Reusable per-node execution state: RNG streams, halt/termination bookkeeping, the active
/// worklist, typed message/program/output buffer pools, and the epoch-keyed [`NodeInit`]
/// slab.
///
/// A session is cheap to create but pays off when reused: every buffer is reset in place
/// between runs, so consecutive attempts of an alternation (or consecutive cells of a sweep
/// shard) allocate almost nothing. On an *unchanged* [`GraphView`] (same content epoch) a
/// run through [`run_view`] is fully allocation-free at the runtime level, provided the
/// caller hands finished [`Execution`]s back through [`Session::recycle_execution`] (the
/// alternating drivers of `local-uniform` do).
#[derive(Default)]
pub struct Session {
    /// Per-node lazily-drawn RNG slots, stamped with the tick base of the run that filled
    /// them (see [`RoundCtx::rng`]); a stale stamp means "not drawn this run", so nothing
    /// is cleared between runs and deterministic programs never pay a stream derivation.
    rngs: Vec<Option<(u64, ChaCha8Rng)>>,
    halted: Vec<bool>,
    termination: Vec<u64>,
    active: Vec<usize>,
    /// Monotone round-tick source shared by every run of this session; the message arenas'
    /// stamps are drawn from it, which is what lets stale cells persist unswept.
    next_tick: u64,
    /// Message arena + staging buffers per message type (boxed once, reused forever).
    msg_pool: HashMap<TypeId, Box<dyn Any>>,
    /// Spare `Vec<S::Prog>` stacks per program type.
    program_pool: HashMap<TypeId, Box<dyn Any>>,
    /// Spare `Vec<S::Output>` stacks per output type, refilled by the recycle methods.
    output_pool: HashMap<TypeId, Box<dyn Any>>,
    /// Spare buffers for the per-run termination / halted result vectors.
    spare_termination: Option<Vec<u64>>,
    spare_halted: Option<Vec<bool>>,
    /// The frozen init slab (ids, degrees, flat neighbor-identity arena), keyed by the
    /// topology's content epoch.
    slab: InitSlab,
    /// Materialized-subgraph cache for composite algorithms without a view-native path,
    /// keyed by the view's content epoch (equal epoch ⇒ structurally identical view).
    materialized: Option<(u64, Graph)>,
}

impl Session {
    /// A fresh session with empty buffers.
    pub fn new() -> Self {
        Session::default()
    }

    /// The materialization of `view`, cached by content epoch: repeated attempts on an
    /// unchanged configuration (the common case between prunings) copy the subgraph once, not
    /// once per attempt. Used by the default [`crate::algorithm::GraphAlgorithm::execute_view`].
    pub fn materialized_graph(&mut self, view: &GraphView<'_>) -> &Graph {
        let epoch = view.epoch();
        if self.materialized.as_ref().is_none_or(|&(cached, _)| cached != epoch) {
            let (graph, _back) = view.materialize();
            self.materialized = Some((epoch, graph));
        }
        &self.materialized.as_ref().expect("cache filled above").1
    }

    /// The content epoch the cached init slab was built from, if any — a diagnostics hook
    /// for tests asserting that [`GraphView::retain`] invalidates the cache.
    pub fn cached_init_epoch(&self) -> Option<u64> {
        self.slab.key
    }

    /// Returns a finished execution's buffers (outputs, termination, halted) to the
    /// session's pools so the next run of the same output type allocates nothing.
    ///
    /// Purely an optimization — executions that are kept alive (or dropped) instead are
    /// merely re-allocated on the next run.
    pub fn recycle_execution<O: Send + 'static>(&mut self, exec: Execution<O>) {
        let Execution { outputs, termination, halted, .. } = exec;
        self.recycle_outputs(outputs);
        self.recycle_flags(termination, halted);
    }

    /// Returns an output vector (e.g. [`crate::algorithm::AlgoRun::outputs`]) to the
    /// session's per-type pool; see [`Session::recycle_execution`].
    pub fn recycle_outputs<O: Send + 'static>(&mut self, mut outputs: Vec<O>) {
        outputs.clear();
        let stack = self
            .output_pool
            .entry(TypeId::of::<Vec<O>>())
            .or_insert_with(|| Box::new(Vec::<Vec<O>>::new()));
        if let Some(stack) = stack.downcast_mut::<Vec<Vec<O>>>() {
            stack.push(outputs);
        }
    }

    /// Returns a run's termination/halted vectors to the spare slots; see
    /// [`Session::recycle_execution`].
    pub fn recycle_flags(&mut self, termination: Vec<u64>, halted: Vec<bool>) {
        self.spare_termination = Some(termination);
        self.spare_halted = Some(halted);
    }

    fn take_output_buf<O: Send + 'static>(&mut self) -> Vec<O> {
        self.output_pool
            .get_mut(&TypeId::of::<Vec<O>>())
            .and_then(|b| b.downcast_mut::<Vec<Vec<O>>>())
            .and_then(Vec::pop)
            .unwrap_or_default()
    }

    fn take_program_buf<P: 'static>(&mut self) -> Vec<P> {
        self.program_pool
            .get_mut(&TypeId::of::<Vec<P>>())
            .and_then(|b| b.downcast_mut::<Vec<Vec<P>>>())
            .and_then(Vec::pop)
            .unwrap_or_default()
    }

    fn put_program_buf<P: 'static>(&mut self, mut buf: Vec<P>) {
        buf.clear();
        let stack = self
            .program_pool
            .entry(TypeId::of::<Vec<P>>())
            .or_insert_with(|| Box::new(Vec::<Vec<P>>::new()));
        if let Some(stack) = stack.downcast_mut::<Vec<Vec<P>>>() {
            stack.push(buf);
        }
    }

    fn take_msgs<M: 'static>(&mut self, n: usize) -> Box<MsgBuffers<M>> {
        let mut buffers = self
            .msg_pool
            .remove(&TypeId::of::<M>())
            .and_then(|b| b.downcast::<MsgBuffers<M>>().ok())
            .unwrap_or_else(|| Box::new(MsgBuffers::new()));
        buffers.reset(n);
        buffers
    }

    fn put_msgs<M: 'static>(&mut self, buffers: Box<MsgBuffers<M>>) {
        self.msg_pool.insert(TypeId::of::<M>(), buffers);
    }
}

/// Runs `spec` over `view` with the session's reusable buffers.
///
/// For the same alive set, seed, and spec this is byte-identical to materializing the view
/// with [`GraphView::materialize`] and calling [`crate::runner::run`] on the result: node
/// indexing, port numbering, message order, and the identity-derived RNG streams all agree.
///
/// # Panics
///
/// Panics if `inputs.len() != view.node_count()`.
pub fn run_view<S: ProgramSpec>(
    view: &GraphView<'_>,
    inputs: &[S::Input],
    spec: &S,
    cfg: &RunConfig,
    session: &mut Session,
) -> Execution<S::Output> {
    run_core(view, inputs, spec, cfg, session)
}

/// The shared round loop; monomorphized over the topology (graph or view).
pub(crate) fn run_core<T: Topology, S: ProgramSpec>(
    topo: &T,
    inputs: &[S::Input],
    spec: &S,
    cfg: &RunConfig,
    session: &mut Session,
) -> Execution<S::Output> {
    let n = topo.node_count();
    assert_eq!(inputs.len(), n, "one input per node is required");

    // Freeze (or reuse) the init slab: on an unchanged view the epoch matches and nothing is
    // rebuilt; otherwise the slab's buffers are refilled in place.
    let mut slab = std::mem::take(&mut session.slab);
    if slab.key.is_none() || slab.key != topo.content_epoch() {
        slab.rebuild(topo);
    }

    // Pooled per-type buffers. Outputs are prefilled with the spec's forced default (the
    // paper's arbitrary output for cut-off nodes) and overwritten when a node halts by
    // itself — same values as deciding after the run, without the `Option` layer.
    let mut programs: Vec<S::Prog> = session.take_program_buf();
    let mut outputs: Vec<S::Output> = session.take_output_buf();
    for (v, input) in inputs.iter().enumerate() {
        let init = NodeInit {
            index: v,
            id: slab.ids[v],
            degree: slab.degree(v),
            neighbor_ids: slab.neighbors(v),
            input,
        };
        outputs.push(spec.default_output(&init));
        programs.push(spec.build(&init));
    }

    if session.rngs.len() < n {
        session.rngs.resize_with(n, || None);
    }
    session.halted.clear();
    session.halted.resize(n, false);
    session.termination.clear();
    session.termination.resize(n, 0);
    session.active.clear();
    session.active.extend(0..n);
    // Tick base of this run, with a gap of one so round 0 (which accepts `tick_base - 1`)
    // can never match a stamp written by the previous run.
    let tick_base = session.next_tick.wrapping_add(1);
    let mut msgs = session.take_msgs::<S::Msg>(slab.arc_count());
    let mut outbox: Vec<(usize, S::Msg)> = std::mem::take(&mut msgs.outbox);
    let mut inbox: Vec<Incoming<S::Msg>> = std::mem::take(&mut msgs.inbox);
    let mut bcast: Option<S::Msg>;

    let mut messages: u64 = 0;
    let mut trace = cfg.record_trace.then(ExecutionTrace::default);

    // Observability (one relaxed load; everything below is skipped when disabled). The
    // per-round calls are allocation-free: counters are atomics, the value event lands in
    // a preallocated fixed-capacity buffer.
    let obs_on = local_obs::is_enabled();
    if obs_on {
        local_obs::gauge_max(local_obs::metrics::ARENA_ARCS, slab.arc_count() as u64);
    }

    let limit = cfg.max_rounds.unwrap_or(cfg.hard_cap).min(cfg.hard_cap);
    let mut rounds_executed = 0u64;
    let mut active_count = n;

    let mut round: u64 = 0;
    while active_count > 0 && round < limit {
        let send_tick = tick_base + round;
        let read_tick = send_tick - 1;
        // Split the parity arenas into this round's read half (shared, scanned lazily by
        // the contexts) and write half (delivery target) — disjoint borrows, no swap.
        let [stamps_even, stamps_odd] = &mut msgs.stamps;
        let [payloads_even, payloads_odd] = &mut msgs.payloads;
        let (read_stamps, read_payloads, send_stamps, send_payloads) =
            if read_tick.is_multiple_of(2) {
                (&*stamps_even, &*payloads_even, stamps_odd, payloads_odd)
            } else {
                (&*stamps_odd, &*payloads_odd, stamps_even, payloads_even)
            };
        let mut delivered_this_round = 0u64;
        let mut any_halt = false;
        for idx in 0..session.active.len() {
            let v = session.active[idx];
            let base = slab.offsets[v] as usize;
            let degree = slab.degree(v);
            outbox.clear();
            bcast = None;
            // The inbox is staged lazily: the context gets the node's raw dense-arc
            // segment and materializes the port-ascending inbox only if the program asks.
            let mut staged = false;
            let action = {
                let mut ctx = RoundCtx {
                    round,
                    degree,
                    neighbor_ids: slab.neighbors(v),
                    inbox: &mut inbox,
                    staged: &mut staged,
                    stamps: &read_stamps[base..base + degree],
                    payloads: &read_payloads[base..base + degree],
                    read_tick,
                    outbox: &mut outbox,
                    broadcast: &mut bcast,
                    rng_slot: &mut session.rngs[v],
                    rng_key: (tick_base, cfg.seed, slab.ids[v]),
                };
                programs[v].round(&mut ctx)
            };
            // Deliver: `arrival_arc` holds the receiving cell of each port, so a message is
            // one contiguous read plus two indexed writes — no topology access.
            if let Some(msg) = bcast.take() {
                for &arc in &slab.arrival_arc[base..base + degree] {
                    send_stamps[arc as usize] = send_tick;
                    send_payloads[arc as usize] = Some(msg.clone());
                }
                delivered_this_round += degree as u64;
            }
            for (port, msg) in outbox.drain(..) {
                let arc = slab.arrival_arc[base + port] as usize;
                send_stamps[arc] = send_tick;
                send_payloads[arc] = Some(msg);
                delivered_this_round += 1;
            }
            if let Action::Halt(out) = action {
                outputs[v] = out;
                // Halting during round r means the node used r communication rounds.
                session.termination[v] = round;
                session.halted[v] = true;
                active_count -= 1;
                any_halt = true;
            }
        }
        messages += delivered_this_round;
        if any_halt {
            local_simd::compact_unmarked(&mut session.active, &session.halted);
        }
        round += 1;
        rounds_executed = round;
        if obs_on {
            local_obs::counter_add(local_obs::metrics::ROUNDS, 1);
            local_obs::counter_add(local_obs::metrics::MESSAGES_SENT, delivered_this_round);
            local_obs::record(
                local_obs::metrics::ACTIVE_NODES,
                local_obs::LabelId::NONE,
                active_count as u64,
            );
        }
        if let Some(t) = trace.as_mut() {
            t.rounds.push(RoundTrace {
                round: round - 1,
                active_nodes: active_count,
                messages: delivered_this_round,
            });
        }
    }
    session.put_program_buf(programs);

    let completed = active_count == 0;
    // Nodes that never halted keep their prefilled default output and are charged the full
    // execution length.
    let cut_off_at = rounds_executed;
    let mut termination = session.spare_termination.take().unwrap_or_default();
    termination.clear();
    termination.extend(session.termination.iter().zip(session.halted.iter()).map(|(&t, &h)| {
        if h {
            t
        } else {
            cut_off_at
        }
    }));
    let mut halted = session.spare_halted.take().unwrap_or_default();
    halted.clear();
    halted.extend_from_slice(&session.halted);
    let rounds = termination.iter().copied().max().unwrap_or(0);

    session.next_tick = tick_base + rounds_executed;
    msgs.outbox = outbox;
    msgs.inbox = inbox;
    session.put_msgs(msgs);
    session.slab = slab;

    Execution { outputs, rounds, termination, halted, messages, completed, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;

    /// Gossip spec: flood identities, output the max seen after `radius` rounds.
    struct MaxIdSpec {
        radius: u64,
    }
    struct MaxIdProg {
        radius: u64,
        best: u64,
    }
    impl NodeProgram for MaxIdProg {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) -> Action<u64> {
            for m in ctx.inbox() {
                self.best = self.best.max(m.msg);
            }
            if ctx.round() == self.radius {
                return Action::Halt(self.best);
            }
            ctx.broadcast(self.best);
            Action::Continue
        }
    }
    impl ProgramSpec for MaxIdSpec {
        type Input = ();
        type Msg = u64;
        type Output = u64;
        type Prog = MaxIdProg;
        fn build(&self, init: &NodeInit<()>) -> MaxIdProg {
            MaxIdProg { radius: self.radius, best: init.id }
        }
        fn default_output(&self, _init: &NodeInit<()>) -> u64 {
            0
        }
    }

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn view_run_matches_graph_run_on_full_view() {
        let g = path(8);
        let cfg = RunConfig::seeded(3).with_trace();
        let reference = run(&g, &[(); 8], &MaxIdSpec { radius: 3 }, &cfg);
        let view = GraphView::full(&g);
        let mut session = Session::new();
        let via_view = run_view(&view, &[(); 8], &MaxIdSpec { radius: 3 }, &cfg, &mut session);
        assert_eq!(via_view.outputs, reference.outputs);
        assert_eq!(via_view.rounds, reference.rounds);
        assert_eq!(via_view.messages, reference.messages);
        assert_eq!(via_view.termination, reference.termination);
        assert_eq!(via_view.trace.unwrap().rounds.len(), reference.trace.unwrap().rounds.len());
    }

    #[test]
    fn view_run_matches_materialized_subgraph_run() {
        let g = path(10);
        let keep: Vec<bool> = (0..10).map(|v| v != 3 && v != 7).collect();
        let (sub, _back) = g.induced_subgraph(&keep);
        let cfg = RunConfig::seeded(11);
        let reference = run(&sub, &vec![(); sub.node_count()], &MaxIdSpec { radius: 4 }, &cfg);
        let view = GraphView::with_mask(&g, &keep);
        let mut session = Session::new();
        let via_view = run_view(
            &view,
            &vec![(); view.node_count()],
            &MaxIdSpec { radius: 4 },
            &cfg,
            &mut session,
        );
        assert_eq!(via_view.outputs, reference.outputs);
        assert_eq!(via_view.rounds, reference.rounds);
        assert_eq!(via_view.messages, reference.messages);
    }

    #[test]
    fn session_reuse_across_runs_is_clean() {
        let g = path(6);
        let view = GraphView::full(&g);
        let mut session = Session::new();
        let cfg = RunConfig::seeded(0);
        let first = run_view(&view, &[(); 6], &MaxIdSpec { radius: 2 }, &cfg, &mut session);
        let second = run_view(&view, &[(); 6], &MaxIdSpec { radius: 2 }, &cfg, &mut session);
        assert_eq!(first.outputs, second.outputs);
        assert_eq!(first.messages, second.messages);
        // A run over a shrunken view after a big one must not see stale state.
        let mut small = GraphView::full(&g);
        small.retain(&[true, true, true, false, false, false]);
        let shrunk = run_view(&small, &[(); 3], &MaxIdSpec { radius: 2 }, &cfg, &mut session);
        assert_eq!(shrunk.outputs.len(), 3);
        assert_eq!(shrunk.outputs, vec![2, 2, 2]);
    }
}

//! Reproducible per-node randomness.
//!
//! Randomized LOCAL algorithms let every node draw private random bits, independent across
//! nodes (Section 2 of the paper). For reproducible experiments the runtime derives one
//! deterministic stream per node from an execution seed and the node identity, using a
//! SplitMix-style mix so that neighboring identities do not produce correlated streams.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Mixes an execution seed and a node identity into a 64-bit stream seed.
///
/// Uses the SplitMix64 finalizer, which is a bijection with good avalanche behaviour, so
/// distinct `(seed, id)` pairs give distinct stream seeds.
pub fn mix_seed(seed: u64, id: u64) -> u64 {
    let mut z = seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The private random stream of the node with identity `id` under execution seed `seed`.
pub fn node_rng(seed: u64, id: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(mix_seed(seed, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = node_rng(1, 2);
        let mut b = node_rng(1, 2);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_nodes_different_streams() {
        let mut a = node_rng(1, 2);
        let mut b = node_rng(1, 3);
        assert_ne!(
            (a.next_u64(), a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64(), b.next_u64())
        );
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = node_rng(1, 2);
        let mut b = node_rng(4, 2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn mix_seed_distinguishes_swapped_arguments() {
        assert_ne!(mix_seed(5, 9), mix_seed(9, 5));
    }
}

//! Live-mask graph views: identity-preserving subgraphs without the copy.
//!
//! The paper's alternating algorithms repeatedly prune nodes and recurse on the induced
//! subgraph of the survivors. Materializing that subgraph with [`Graph::induced_subgraph`]
//! costs `O(n + m)` (plus edge-set reconstruction) per pruning step — a dominant cost of a
//! whole alternation run once the black-box attempts are budgeted. A [`GraphView`] instead
//! overlays the base CSR with per-node *live segments*: the adjacency array is copied once at
//! view creation, each node's segment keeps only alive neighbors (in base order), and pruning
//! edits the segments of the pruned nodes' neighborhoods in place. Reverse ports are cached
//! per arc, so the round loop's message routing is O(1) exactly like on a plain [`Graph`].
//!
//! **Index contract.** A view exposes a dense *live index* space `0..live_count`, ordered by
//! ascending base index. This is exactly the index space [`Graph::induced_subgraph`] would
//! produce for the same alive set, so code written against materialized subgraphs (input
//! vectors, tentative outputs, pruning masks) ports to views without re-indexing — and runs
//! on a view are byte-identical to runs on the materialized subgraph (same ports, same
//! message order, same identity-derived RNG streams).

use crate::graph::{Graph, NodeId, NodeIndex};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide epoch source: every distinct view *content* gets a unique epoch, so equal
/// epochs imply structurally identical views (clones share content and epoch; any mutation
/// assigns a fresh epoch). Used to key materialization caches.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    NEXT_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// Views index nodes and arcs with `u32` to halve the cache footprint of the hot overlay
/// arrays; the base graph must fit that width. 4 billion arcs is ~32 GiB of base adjacency
/// alone, so the cap is far beyond what a single view can hold anyway.
fn check_u32_width(nodes: usize, arcs: usize) {
    assert!(
        nodes <= u32::MAX as usize && arcs <= u32::MAX as usize,
        "graph exceeds the view's u32 index width ({nodes} nodes, {arcs} arcs)"
    );
}

/// A live subgraph of a base [`Graph`], maintained as an alive mask plus segmented adjacency.
///
/// All public accessors speak *live indices* (dense `0..node_count()`, ascending base order);
/// [`GraphView::base_index`] and [`GraphView::live_nodes`] translate back to the base graph.
/// The runtime's round loop additionally uses the base-indexed *slot* accessors (see
/// [`crate::session::Topology`]), which read the flat segments directly.
#[derive(Clone)]
pub struct GraphView<'g> {
    base: &'g Graph,
    /// `alive[b]` — is base node `b` still in the view?
    alive: Vec<bool>,
    /// Segment boundaries per base node (a copy of the base CSR offsets; segment capacity is
    /// the base degree, the live part is `adj[offsets[b]..offsets[b] + live_len[b]]`).
    /// Stored as `u32`: views cap nodes and arcs at `u32::MAX` (checked at construction) so
    /// the arrays the round loop streams through are half the width of the base CSR.
    offsets: Vec<u32>,
    /// Segmented adjacency: alive base neighbors of `b`, ascending, in the segment's prefix.
    adj: Vec<u32>,
    /// Per arc, the port at which the *source* appears in the target's live segment.
    rev: Vec<u32>,
    /// Live degree of each base node.
    live_len: Vec<u32>,
    /// Alive base indices, ascending. Position = live index.
    live_nodes: Vec<NodeIndex>,
    /// Base index -> live index. Stale for dead nodes (never read for them).
    live_index: Vec<u32>,
    /// Content identity: unique per distinct alive set (see [`NEXT_EPOCH`]); refreshed by
    /// every effective [`GraphView::retain`], shared by clones.
    epoch: u64,
}

impl fmt::Debug for GraphView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphView")
            .field("live_nodes", &self.node_count())
            .field("base_nodes", &self.base.node_count())
            .finish()
    }
}

impl<'g> GraphView<'g> {
    /// A view with every node of `base` alive. One flat copy of the CSR arrays, no per-node
    /// allocations, and reverse ports derived from the base's precomputed reverse arcs.
    pub fn full(base: &'g Graph) -> Self {
        let n = base.node_count();
        let (offsets, adjacency, reverse) = base.csr();
        check_u32_width(n, adjacency.len());
        let mut rev = vec![0u32; adjacency.len()];
        for (k, &w) in adjacency.iter().enumerate() {
            rev[k] = (reverse[k] - offsets[w]) as u32;
        }
        let live_len: Vec<u32> = (0..n).map(|b| (offsets[b + 1] - offsets[b]) as u32).collect();
        GraphView {
            base,
            alive: vec![true; n],
            offsets: offsets.iter().map(|&o| o as u32).collect(),
            adj: adjacency.iter().map(|&w| w as u32).collect(),
            rev,
            live_len,
            live_nodes: (0..n).collect(),
            live_index: (0..n as u32).collect(),
            epoch: fresh_epoch(),
        }
    }

    /// A view over the nodes of `base` with `keep[b] == true` (base-indexed mask).
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != base.node_count()`.
    pub fn with_mask(base: &'g Graph, keep: &[bool]) -> Self {
        let n = base.node_count();
        assert_eq!(keep.len(), n, "keep mask must cover every base node");
        let (offsets, adjacency, _) = base.csr();
        check_u32_width(n, adjacency.len());
        let mut adj = vec![0u32; adjacency.len()];
        let mut live_len = vec![0u32; n];
        let mut live_nodes = Vec::new();
        let mut live_index = vec![u32::MAX; n];
        for b in 0..n {
            if !keep[b] {
                continue;
            }
            live_index[b] = live_nodes.len() as u32;
            live_nodes.push(b);
            let mut len = 0;
            for &w in base.neighbors(b) {
                if keep[w] {
                    adj[offsets[b] + len] = w as u32;
                    len += 1;
                }
            }
            live_len[b] = len as u32;
        }
        let mut rev = vec![0u32; adj.len()];
        for &b in &live_nodes {
            for p in 0..live_len[b] as usize {
                let w = adj[offsets[b] + p] as usize;
                let segment = &adj[offsets[w]..offsets[w] + live_len[w] as usize];
                let back = segment.binary_search(&(b as u32)).expect("reverse arc must exist");
                rev[offsets[b] + p] = back as u32;
            }
        }
        GraphView {
            base,
            alive: keep.to_vec(),
            offsets: offsets.iter().map(|&o| o as u32).collect(),
            adj,
            rev,
            live_len,
            live_nodes,
            live_index,
            epoch: fresh_epoch(),
        }
    }

    /// The base graph this view filters.
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// The view's content epoch: equal epochs imply structurally identical views (a clone
    /// shares its source's epoch until either is mutated), so the epoch can key caches of
    /// derived data such as [`crate::session::Session`]'s materialized-subgraph cache.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of alive nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes.len()
    }

    /// `true` when no node is alive.
    pub fn is_empty(&self) -> bool {
        self.live_nodes.is_empty()
    }

    /// Alive base indices in ascending order; position in this slice is the live index.
    pub fn live_nodes(&self) -> &[NodeIndex] {
        &self.live_nodes
    }

    /// Base index of live node `l`.
    pub fn base_index(&self, l: usize) -> NodeIndex {
        self.live_nodes[l]
    }

    /// Identity `Id(v)` of live node `l` (identities are preserved from the base graph).
    pub fn id(&self, l: usize) -> NodeId {
        self.base.id(self.live_nodes[l])
    }

    /// Degree of live node `l` *within the view*.
    pub fn degree(&self, l: usize) -> usize {
        self.live_len[self.live_nodes[l]] as usize
    }

    /// The `port`-th live neighbor of live node `l`, as a live index.
    pub fn neighbor(&self, l: usize, port: usize) -> usize {
        let b = self.live_nodes[l];
        self.live_index[self.adj[self.offsets[b] as usize + port] as usize] as usize
    }

    /// The port at which live node `l` appears in the adjacency of its `port`-th neighbor.
    pub fn reverse_port(&self, l: usize, port: usize) -> usize {
        self.rev[self.offsets[self.live_nodes[l]] as usize + port] as usize
    }

    /// Iterates the live neighbors of live node `l`, as ascending live indices.
    pub fn neighbors(&self, l: usize) -> impl Iterator<Item = usize> + '_ {
        self.slot_neighbors(self.live_nodes[l])
            .iter()
            .map(move |&w| self.live_index[w as usize] as usize)
    }

    /// The live segment (alive base neighbors, as `u32` base indices) of base node `s`.
    pub(crate) fn slot_neighbors(&self, s: usize) -> &[u32] {
        let start = self.offsets[s] as usize;
        &self.adj[start..start + self.live_len[s] as usize]
    }

    /// Live degree of base node `s`.
    pub(crate) fn slot_degree(&self, s: usize) -> usize {
        self.live_len[s] as usize
    }

    /// The `port`-th alive neighbor of base node `s`, as a base index.
    pub(crate) fn slot_neighbor(&self, s: usize, port: usize) -> usize {
        self.adj[self.offsets[s] as usize + port] as usize
    }

    /// The arrival port of an arc sent from base node `s` on `port` (cached, O(1)).
    pub(crate) fn slot_reverse_port(&self, s: usize, port: usize) -> usize {
        self.rev[self.offsets[s] as usize + port] as usize
    }

    /// Live index of base node `s` (only meaningful for alive nodes).
    pub(crate) fn live_index_of(&self, s: usize) -> usize {
        self.live_index[s] as usize
    }

    /// `true` if live nodes `u` and `v` are adjacent in the view.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.slot_neighbors(self.live_nodes[u]).binary_search(&(self.live_nodes[v] as u32)).is_ok()
    }

    /// Maximum live degree; `0` for the empty view.
    pub fn max_degree(&self) -> usize {
        self.live_nodes.iter().map(|&b| self.live_len[b] as usize).max().unwrap_or(0)
    }

    /// Largest identity among alive nodes, or 0 if empty.
    pub fn max_id(&self) -> NodeId {
        self.live_nodes.iter().map(|&b| self.base.id(b)).max().unwrap_or(0)
    }

    /// Iterates over all live undirected edges `(u, v)` with `u < v` (live indices).
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.node_count())
            .flat_map(move |u| self.neighbors(u).filter(move |&v| u < v).map(move |v| (u, v)))
    }

    /// The live nodes at distance at most `r` from live node `l` (the ball `B(v, r)` in the
    /// view), including `l`, as sorted live indices.
    pub fn ball(&self, l: usize, r: usize) -> Vec<usize> {
        let mut dist = std::collections::HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        let mut out = vec![l];
        dist.insert(l, 0usize);
        queue.push_back(l);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if du == r {
                continue;
            }
            for &wb in self.slot_neighbors(self.live_nodes[u]) {
                let w = self.live_index[wb as usize] as usize;
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(du + 1);
                    out.push(w);
                    queue.push_back(w);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Removes every live node `l` with `keep[l] == false` (live-indexed mask, matching the
    /// output of a pruning algorithm).
    ///
    /// Cost is `O(live)` for the index rebuild plus the segment edits incident to the removed
    /// nodes — no base-CSR copy, no edge-set reconstruction.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != node_count()`.
    pub fn retain(&mut self, keep: &[bool]) {
        assert_eq!(keep.len(), self.node_count(), "keep mask must cover every live node");
        if local_simd::mask_all_true(keep) {
            return;
        }
        let removed: Vec<NodeIndex> = self
            .live_nodes
            .iter()
            .enumerate()
            .filter(|&(l, _)| !keep[l])
            .map(|(_, &b)| b)
            .collect();
        for &b in &removed {
            self.alive[b] = false;
        }
        for &w in &removed {
            // Delete w from each alive neighbor's segment. `rev` keeps every stored position
            // current across deletions (dead nodes' segments stay intact until the end, so
            // their cached positions keep being maintained and read consistently).
            let w_start = self.offsets[w] as usize;
            for k in 0..self.live_len[w] as usize {
                let u = self.adj[w_start + k] as usize;
                if !self.alive[u] {
                    continue;
                }
                let pos = self.rev[w_start + k] as usize;
                let (start, len) = (self.offsets[u] as usize, self.live_len[u] as usize);
                debug_assert_eq!(self.adj[start + pos] as usize, w);
                // Shift the tail of u's segment left over the deleted entry and fix the
                // reverse positions cached at the shifted arcs' endpoints.
                for j in pos..len - 1 {
                    let x = self.adj[start + j + 1];
                    let back = self.rev[start + j + 1];
                    self.adj[start + j] = x;
                    self.rev[start + j] = back;
                    self.rev[self.offsets[x as usize] as usize + back as usize] -= 1;
                }
                self.live_len[u] = (len - 1) as u32;
            }
        }
        for &w in &removed {
            self.live_len[w] = 0;
        }
        local_simd::compact_marked(&mut self.live_nodes, &self.alive);
        for (l, &b) in self.live_nodes.iter().enumerate() {
            self.live_index[b] = l as u32;
        }
        self.epoch = fresh_epoch();
    }

    /// Materializes the view as a standalone [`Graph`], plus the live-index → base-index map.
    ///
    /// The result is exactly what chaining [`Graph::induced_subgraph`] along the same pruning
    /// history would have produced (same node order, identities, and adjacency), which is what
    /// lets composite algorithms without a view-native path fall back to a copy.
    pub fn materialize(&self) -> (Graph, Vec<NodeIndex>) {
        let edges: Vec<(usize, usize)> = self.edges().collect();
        let ids: Vec<NodeId> = self.live_nodes.iter().map(|&b| self.base.id(b)).collect();
        let graph = Graph::from_edges_with_ids(self.node_count(), &edges, &ids)
            .expect("a live view of a valid graph is valid");
        (graph, self.live_nodes.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // 0-1-2-3-4 path plus chord 0-2.
        Graph::from_edges_with_ids(
            5,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 2)],
            &[10, 20, 30, 40, 50],
        )
        .unwrap()
    }

    fn assert_consistent(v: &GraphView<'_>) {
        for l in 0..v.node_count() {
            for p in 0..v.degree(l) {
                let w = v.neighbor(l, p);
                let back = v.reverse_port(l, p);
                assert_eq!(v.neighbor(w, back), l, "reverse port cache inconsistent");
            }
        }
    }

    #[test]
    fn full_view_mirrors_base() {
        let g = sample();
        let v = GraphView::full(&g);
        assert_eq!(v.node_count(), 5);
        assert_eq!(v.max_degree(), g.max_degree());
        assert_eq!(v.max_id(), 50);
        for l in 0..5 {
            assert_eq!(v.id(l), g.id(l));
            assert_eq!(v.degree(l), g.degree(l));
            for p in 0..v.degree(l) {
                assert_eq!(v.neighbor(l, p), g.neighbor(l, p));
                assert_eq!(v.reverse_port(l, p), g.reverse_port(l, p));
            }
        }
        assert_consistent(&v);
    }

    #[test]
    fn retain_matches_induced_subgraph() {
        let g = sample();
        let keep = [true, false, true, true, false];
        let (sub, back) = g.induced_subgraph(&keep);
        let mut v = GraphView::full(&g);
        v.retain(&keep);
        assert_eq!(v.live_nodes(), back.as_slice());
        assert_eq!(v.node_count(), sub.node_count());
        for l in 0..sub.node_count() {
            assert_eq!(v.id(l), sub.id(l));
            assert_eq!(v.degree(l), sub.degree(l));
            for p in 0..sub.degree(l) {
                assert_eq!(v.neighbor(l, p), sub.neighbor(l, p));
                assert_eq!(v.reverse_port(l, p), sub.reverse_port(l, p));
            }
        }
        assert_consistent(&v);
        let (mat, mback) = v.materialize();
        assert_eq!(mat, sub);
        assert_eq!(mback, back);
    }

    #[test]
    fn chained_retain_equals_chained_subgraphs() {
        let g = sample();
        let k1 = [true, true, true, true, false];
        let (s1, b1) = g.induced_subgraph(&k1);
        let k2 = [true, false, true, true];
        let (s2, b2) = s1.induced_subgraph(&k2);
        let mut v = GraphView::full(&g);
        v.retain(&k1);
        v.retain(&k2);
        assert_consistent(&v);
        let (mat, back) = v.materialize();
        assert_eq!(mat, s2);
        let expect_back: Vec<usize> = b2.iter().map(|&i| b1[i]).collect();
        assert_eq!(back, expect_back);
    }

    #[test]
    fn with_mask_equals_full_then_retain() {
        let g = sample();
        let keep = [false, true, true, false, true];
        let a = GraphView::with_mask(&g, &keep);
        let mut b = GraphView::full(&g);
        b.retain(&keep);
        assert_eq!(a.live_nodes(), b.live_nodes());
        assert_eq!(a.materialize().0, b.materialize().0);
        assert_consistent(&a);
        assert_consistent(&b);
    }

    #[test]
    fn random_pruning_chains_stay_consistent_with_subgraphs() {
        // A denser random graph pruned in several waves: the view must track the chained
        // induced subgraphs exactly (structure + reverse ports) at every step.
        let n = 40;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| (u + 1..n).map(move |v| (u, v)))
            .filter(|&(u, v)| (u * 31 + v * 17) % 5 == 0)
            .collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut v = GraphView::full(&g);
        let mut reference = g.clone();
        for wave in 0..4u64 {
            let live = v.node_count();
            if live == 0 {
                break;
            }
            let keep: Vec<bool> =
                (0..live).map(|l| !(l as u64 * 7 + wave).is_multiple_of(3)).collect();
            v.retain(&keep);
            let (sub, _) = reference.induced_subgraph(&keep);
            reference = sub;
            assert_consistent(&v);
            let (mat, _) = v.materialize();
            assert_eq!(mat, reference, "wave {wave} diverged");
        }
    }

    #[test]
    fn ball_and_has_edge_on_view() {
        let g = sample();
        // Drop node 2: path becomes 0-1, 3-4 components (chord 0-2 also gone).
        let mut v = GraphView::full(&g);
        v.retain(&[true, true, false, true, true]);
        // Live indices: 0->0, 1->1, 3->2, 4->3.
        assert!(v.has_edge(0, 1));
        assert!(!v.has_edge(1, 2));
        assert_eq!(v.ball(0, 2), vec![0, 1]);
        assert_eq!(v.ball(2, 1), vec![2, 3]);
    }

    #[test]
    fn epochs_track_content_identity() {
        let g = sample();
        let a = GraphView::full(&g);
        let b = a.clone();
        assert_eq!(a.epoch(), b.epoch(), "clones share content, hence epoch");
        let mut c = a.clone();
        c.retain(&[true; 5]); // removing nothing leaves the content (and epoch) unchanged
        assert_eq!(c.epoch(), a.epoch());
        c.retain(&[true, true, true, true, false]);
        assert_ne!(c.epoch(), a.epoch(), "mutation must refresh the epoch");
        let d = GraphView::full(&g);
        assert_ne!(d.epoch(), a.epoch(), "distinct constructions get distinct epochs");
    }

    #[test]
    fn empty_view() {
        let g = sample();
        let v = GraphView::with_mask(&g, &[false; 5]);
        assert!(v.is_empty());
        assert_eq!(v.max_degree(), 0);
        assert_eq!(v.max_id(), 0);
        let (mat, back) = v.materialize();
        assert!(mat.is_empty());
        assert!(back.is_empty());
    }
}

//! Per-node automata: the programming interface for LOCAL-model algorithms.
//!
//! A LOCAL algorithm is described by a [`ProgramSpec`], a factory that, given the local
//! knowledge a node starts with ([`NodeInit`]), builds the node's automaton (a
//! [`NodeProgram`]). The runtime ([`crate::runner`]) drives all automata in lock-step
//! synchronous rounds, delivering every message sent in round `r` before round `r + 1`
//! (fault-free synchronous LOCAL model, unrestricted message size and local computation).
//!
//! Nodes signal termination by returning [`Action::Halt`] with their final output; the
//! paper's "restricted to `i` rounds" operation is realised by the runtime's round budget,
//! which forces undecided nodes to the spec's [`ProgramSpec::default_output`].

use crate::graph::{NodeId, NodeIndex};
use rand_chacha::ChaCha8Rng;

/// The knowledge available to a node *before* any communication.
///
/// This is deliberately minimal: node identity, degree, per-port neighbor identities (which a
/// node could learn in a single round anyway and which essentially every LOCAL algorithm
/// assumes), the node's problem input, and a private random stream. Uniform algorithms must
/// not receive any global parameter here; non-uniform algorithms receive their guesses through
/// their spec's constructor, mirroring the paper's "the code of `A` uses a value `p̃`".
///
/// All reference fields borrow from the runtime's per-session init slab (one flat arena of
/// neighbor identities for the whole graph, cached across attempts on an unchanged
/// configuration — see `crate::session`), so constructing the `n` inits of an execution
/// allocates nothing. Programs that need neighbor identities *during* rounds should prefer
/// [`RoundCtx::neighbor_ids`] over copying the slice out of the init.
#[derive(Debug, Clone)]
pub struct NodeInit<'a, I> {
    /// Index of the node in the executed graph (dense, `0..n`). This is a runtime handle,
    /// not knowledge available to the algorithm; programs should use [`NodeInit::id`] for
    /// symmetry breaking.
    pub index: NodeIndex,
    /// The unique identity `Id(v)`.
    pub id: NodeId,
    /// Degree of the node in the executed graph.
    pub degree: usize,
    /// Identity of the neighbor reachable through each port (`neighbor_ids[p]` is the
    /// identity of the node at the other end of port `p`).
    pub neighbor_ids: &'a [NodeId],
    /// Problem input `x(v)`.
    pub input: &'a I,
}

/// What a node decides to do at the end of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<O> {
    /// Keep running: the node participates in the next round.
    Continue,
    /// Terminate with the given final output. The node sends no further messages and its
    /// `round` method is never called again.
    Halt(O),
}

/// A single node's automaton.
pub trait NodeProgram {
    /// Message type exchanged with neighbors. The LOCAL model does not restrict message size.
    type Msg: Clone;
    /// Final output type `y(v)`.
    type Output: Clone;

    /// Executes one synchronous round.
    ///
    /// On the first invocation (round 0) the inbox is empty; afterwards the inbox contains
    /// exactly the messages sent to this node in the previous round. Messages queued through
    /// [`RoundCtx::send`]/[`RoundCtx::broadcast`] are delivered to neighbors before their next
    /// round.
    fn round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) -> Action<Self::Output>;
}

/// Factory producing one [`NodeProgram`] per node, plus the forced output used when the
/// runtime cuts the execution short (the paper's *algorithm restricted to `i` rounds*).
///
/// Specs are `Send + Sync` and their inputs/outputs are `Send` so that batch schedulers can
/// run many executions of the same spec concurrently across experiment cells. The `'static`
/// bounds let a reusable [`crate::session::Session`] pool typed message buffers across runs.
pub trait ProgramSpec: Send + Sync {
    /// Problem input type `x(v)` handed to every node.
    type Input: Clone + Send + Sync + 'static;
    /// Message type of the node programs.
    type Msg: Clone + Send + 'static;
    /// Output type of the node programs.
    type Output: Clone + Send + 'static;
    /// The node automaton type (`'static` so the session can pool program buffers by type).
    type Prog: NodeProgram<Msg = Self::Msg, Output = Self::Output> + 'static;

    /// Builds the automaton for one node from its initial knowledge.
    fn build(&self, init: &NodeInit<Self::Input>) -> Self::Prog;

    /// Output assigned to a node that did not halt before the round budget expired.
    ///
    /// The paper lets this be arbitrary ("e.g. 0"); correctness of alternating algorithms never
    /// relies on it because the pruning algorithm filters invalid outputs.
    fn default_output(&self, init: &NodeInit<Self::Input>) -> Self::Output;
}

/// A message delivered to a node, tagged with the port it arrived on.
#[derive(Debug, Clone)]
pub struct Incoming<M> {
    /// Port of the *receiving* node on which the message arrived.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// The per-round view a node has of the world: its inbox, an outbox, its clock and its
/// private randomness.
pub struct RoundCtx<'a, M> {
    pub(crate) round: u64,
    pub(crate) degree: usize,
    pub(crate) neighbor_ids: &'a [NodeId],
    pub(crate) inbox: &'a [Incoming<M>],
    pub(crate) outbox: &'a mut Vec<(usize, M)>,
    pub(crate) broadcast: &'a mut Option<M>,
    pub(crate) rng: &'a mut ChaCha8Rng,
}

impl<'a, M: Clone> RoundCtx<'a, M> {
    /// The node's local round counter (0 on the first activation).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Degree of the node (number of ports).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Identity of the neighbor behind each port (`neighbor_ids()[p]` sits across port `p`).
    ///
    /// Served from the runtime's cached init slab, so programs no longer need to copy the
    /// identities out of [`NodeInit`] into per-node vectors at build time.
    pub fn neighbor_ids(&self) -> &[NodeId] {
        self.neighbor_ids
    }

    /// Messages received this round, tagged with the arrival port.
    pub fn inbox(&self) -> &[Incoming<M>] {
        self.inbox
    }

    /// Convenience: the message received on `port` this round, if any.
    pub fn received_on(&self, port: usize) -> Option<&M> {
        self.inbox.iter().find(|m| m.port == port).map(|m| &m.msg)
    }

    /// Queues a message to the neighbor on `port`, delivered before that neighbor's next round.
    ///
    /// At most one message is delivered per port per round; a later send to the same port
    /// within the round replaces the earlier one (the LOCAL model's unrestricted message
    /// size makes batching into one message equivalent).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn send(&mut self, port: usize, msg: M) {
        assert!(port < self.degree, "send on port {port} but degree is {}", self.degree);
        self.outbox.push((port, msg));
    }

    /// Queues the same message to every neighbor.
    ///
    /// Handled by the runtime as a single staged value fanned out at delivery time, so a
    /// broadcast costs one write per neighbor and no outbox traffic. A node delivers at most
    /// one message per port per round: a later [`RoundCtx::send`] to a port overrides a
    /// broadcast queued in the same round, and a repeated broadcast replaces the previous
    /// one.
    pub fn broadcast(&mut self, msg: M) {
        *self.broadcast = Some(msg);
    }

    /// The node's private, reproducible random stream (independent across nodes).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn round_ctx_send_and_broadcast() {
        let inbox: Vec<Incoming<u32>> = vec![Incoming { port: 1, msg: 42 }];
        let mut outbox = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let neighbor_ids = [7u64, 8, 9];
        let mut bcast = None;
        let mut ctx = RoundCtx {
            round: 3,
            degree: 3,
            neighbor_ids: &neighbor_ids,
            inbox: &inbox,
            outbox: &mut outbox,
            broadcast: &mut bcast,
            rng: &mut rng,
        };
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.neighbor_ids(), &[7, 8, 9]);
        assert_eq!(ctx.received_on(1), Some(&42));
        assert_eq!(ctx.received_on(0), None);
        ctx.send(2, 7);
        ctx.broadcast(9);
        assert_eq!(outbox, vec![(2, 7)]);
        assert_eq!(bcast, Some(9));
    }

    #[test]
    #[should_panic(expected = "send on port")]
    fn send_out_of_range_panics() {
        let inbox: Vec<Incoming<u32>> = vec![];
        let mut outbox = Vec::new();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut bcast = None;
        let mut ctx = RoundCtx {
            round: 0,
            degree: 1,
            neighbor_ids: &[4],
            inbox: &inbox,
            outbox: &mut outbox,
            broadcast: &mut bcast,
            rng: &mut rng,
        };
        ctx.send(1, 0);
    }
}

//! Per-node automata: the programming interface for LOCAL-model algorithms.
//!
//! A LOCAL algorithm is described by a [`ProgramSpec`], a factory that, given the local
//! knowledge a node starts with ([`NodeInit`]), builds the node's automaton (a
//! [`NodeProgram`]). The runtime ([`crate::runner`]) drives all automata in lock-step
//! synchronous rounds, delivering every message sent in round `r` before round `r + 1`
//! (fault-free synchronous LOCAL model, unrestricted message size and local computation).
//!
//! Nodes signal termination by returning [`Action::Halt`] with their final output; the
//! paper's "restricted to `i` rounds" operation is realised by the runtime's round budget,
//! which forces undecided nodes to the spec's [`ProgramSpec::default_output`].

use crate::graph::{NodeId, NodeIndex};
use rand_chacha::ChaCha8Rng;

/// The knowledge available to a node *before* any communication.
///
/// This is deliberately minimal: node identity, degree, per-port neighbor identities (which a
/// node could learn in a single round anyway and which essentially every LOCAL algorithm
/// assumes), the node's problem input, and a private random stream. Uniform algorithms must
/// not receive any global parameter here; non-uniform algorithms receive their guesses through
/// their spec's constructor, mirroring the paper's "the code of `A` uses a value `p̃`".
///
/// All reference fields borrow from the runtime's per-session init slab (one flat arena of
/// neighbor identities for the whole graph, cached across attempts on an unchanged
/// configuration — see `crate::session`), so constructing the `n` inits of an execution
/// allocates nothing. Programs that need neighbor identities *during* rounds should prefer
/// [`RoundCtx::neighbor_ids`] over copying the slice out of the init.
#[derive(Debug, Clone)]
pub struct NodeInit<'a, I> {
    /// Index of the node in the executed graph (dense, `0..n`). This is a runtime handle,
    /// not knowledge available to the algorithm; programs should use [`NodeInit::id`] for
    /// symmetry breaking.
    pub index: NodeIndex,
    /// The unique identity `Id(v)`.
    pub id: NodeId,
    /// Degree of the node in the executed graph.
    pub degree: usize,
    /// Identity of the neighbor reachable through each port (`neighbor_ids[p]` is the
    /// identity of the node at the other end of port `p`).
    pub neighbor_ids: &'a [NodeId],
    /// Problem input `x(v)`.
    pub input: &'a I,
}

/// What a node decides to do at the end of a round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<O> {
    /// Keep running: the node participates in the next round.
    Continue,
    /// Terminate with the given final output. The node sends no further messages and its
    /// `round` method is never called again.
    Halt(O),
}

/// A single node's automaton.
pub trait NodeProgram {
    /// Message type exchanged with neighbors. The LOCAL model does not restrict message size.
    type Msg: Clone;
    /// Final output type `y(v)`.
    type Output: Clone;

    /// Executes one synchronous round.
    ///
    /// On the first invocation (round 0) the inbox is empty; afterwards the inbox contains
    /// exactly the messages sent to this node in the previous round. Messages queued through
    /// [`RoundCtx::send`]/[`RoundCtx::broadcast`] are delivered to neighbors before their next
    /// round.
    fn round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) -> Action<Self::Output>;
}

/// Factory producing one [`NodeProgram`] per node, plus the forced output used when the
/// runtime cuts the execution short (the paper's *algorithm restricted to `i` rounds*).
///
/// Specs are `Send + Sync` and their inputs/outputs are `Send` so that batch schedulers can
/// run many executions of the same spec concurrently across experiment cells. The `'static`
/// bounds let a reusable [`crate::session::Session`] pool typed message buffers across runs.
pub trait ProgramSpec: Send + Sync {
    /// Problem input type `x(v)` handed to every node.
    type Input: Clone + Send + Sync + 'static;
    /// Message type of the node programs.
    type Msg: Clone + Send + 'static;
    /// Output type of the node programs.
    type Output: Clone + Send + 'static;
    /// The node automaton type (`'static` so the session can pool program buffers by type).
    type Prog: NodeProgram<Msg = Self::Msg, Output = Self::Output> + 'static;

    /// Builds the automaton for one node from its initial knowledge.
    fn build(&self, init: &NodeInit<Self::Input>) -> Self::Prog;

    /// Output assigned to a node that did not halt before the round budget expired.
    ///
    /// The paper lets this be arbitrary ("e.g. 0"); correctness of alternating algorithms never
    /// relies on it because the pruning algorithm filters invalid outputs.
    fn default_output(&self, init: &NodeInit<Self::Input>) -> Self::Output;
}

/// A message delivered to a node, tagged with the port it arrived on.
#[derive(Debug, Clone)]
pub struct Incoming<M> {
    /// Port of the *receiving* node on which the message arrived.
    pub port: usize,
    /// The payload.
    pub msg: M,
}

/// The per-round view a node has of the world: its inbox, an outbox, its clock and its
/// private randomness.
///
/// The inbox is staged *lazily*: the runtime hands the context the node's raw dense-arc
/// stamp/payload segments, and the first call to [`RoundCtx::inbox`] (or
/// [`RoundCtx::received_on`]) scans the stamps — with the dispatched `local-simd` kernel —
/// and clones out the matching payloads. Nodes that skip their inbox in a round (e.g. a
/// colour class waiting its turn) pay nothing for the messages they ignore.
pub struct RoundCtx<'a, M> {
    pub(crate) round: u64,
    pub(crate) degree: usize,
    pub(crate) neighbor_ids: &'a [NodeId],
    /// Staging buffer for the inbox; valid only once `staged` is set.
    pub(crate) inbox: &'a mut Vec<Incoming<M>>,
    /// Whether `inbox` already reflects this node's segment for this round.
    pub(crate) staged: &'a mut bool,
    /// The node's dense-arc stamp segment in the read arena (one cell per port).
    pub(crate) stamps: &'a [u64],
    /// Message payloads parallel to `stamps`.
    pub(crate) payloads: &'a [Option<M>],
    /// Stamp value marking messages sent in the previous round.
    pub(crate) read_tick: u64,
    pub(crate) outbox: &'a mut Vec<(usize, M)>,
    pub(crate) broadcast: &'a mut Option<M>,
    /// Lazily-drawn private random stream: the slot belongs to the run whose tick stamp
    /// matches `rng_key.0`; any other stamp is a stale stream from an earlier run and is
    /// re-derived on first use. Deterministic programs never touch the slot, so runs of
    /// them skip the per-node stream derivation entirely.
    pub(crate) rng_slot: &'a mut Option<(u64, ChaCha8Rng)>,
    /// `(run tick stamp, execution seed, node identity)` — the derivation key of the
    /// node's stream for this run.
    pub(crate) rng_key: (u64, u64, NodeId),
}

impl<'a, M: Clone> RoundCtx<'a, M> {
    /// The node's local round counter (0 on the first activation).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Degree of the node (number of ports).
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Identity of the neighbor behind each port (`neighbor_ids()[p]` sits across port `p`).
    ///
    /// Served from the runtime's cached init slab, so programs no longer need to copy the
    /// identities out of [`NodeInit`] into per-node vectors at build time.
    pub fn neighbor_ids(&self) -> &[NodeId] {
        self.neighbor_ids
    }

    /// Messages received this round, tagged with the arrival port (port-ascending).
    pub fn inbox(&mut self) -> &[Incoming<M>] {
        self.stage();
        self.inbox
    }

    /// Iterates `(port, message)` over this round's arrivals, port-ascending, **without
    /// staging**: the iterator walks the raw stamp segment (64-arc SIMD match masks) and
    /// borrows payloads in place — no clone, no buffer. Same arrivals in the same order as
    /// [`RoundCtx::inbox`] (the staged buffer is just a materialization of the same
    /// segment, so mixing the two within a round agrees); prefer this in hot per-round
    /// loops.
    pub fn messages(&self) -> Messages<'_, M> {
        Messages {
            stamps: self.stamps,
            payloads: self.payloads,
            read_tick: self.read_tick,
            chunk: 0,
            next_chunk: 0,
            mask: 0,
        }
    }

    /// Number of messages received this round — one SIMD stamp-count pass, no staging.
    pub fn received_count(&self) -> usize {
        local_simd::stamp_match_count(self.stamps, self.read_tick)
    }

    /// Convenience: the message received on `port` this round, if any.
    pub fn received_on(&mut self, port: usize) -> Option<&M> {
        self.stage();
        self.inbox.iter().find(|m| m.port == port).map(|m| &m.msg)
    }

    /// Fills the staging buffer from the raw stamp/payload segments on first access: a
    /// 64-arc-chunked stamp-match mask (SIMD-dispatched), then one clone per set bit.
    fn stage(&mut self) {
        if *self.staged {
            return;
        }
        *self.staged = true;
        // The segment refs live for 'a, independent of this borrow of self, so the raw
        // iterator and the staging pushes don't conflict.
        let raw = Messages {
            stamps: self.stamps,
            payloads: self.payloads,
            read_tick: self.read_tick,
            chunk: 0,
            next_chunk: 0,
            mask: 0,
        };
        let inbox = &mut *self.inbox;
        inbox.clear();
        raw.fold((), |(), (port, msg)| inbox.push(Incoming { port, msg: msg.clone() }));
    }

    /// Queues a message to the neighbor on `port`, delivered before that neighbor's next round.
    ///
    /// At most one message is delivered per port per round; a later send to the same port
    /// within the round replaces the earlier one (the LOCAL model's unrestricted message
    /// size makes batching into one message equivalent).
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree()`.
    pub fn send(&mut self, port: usize, msg: M) {
        assert!(port < self.degree, "send on port {port} but degree is {}", self.degree);
        self.outbox.push((port, msg));
    }

    /// Queues the same message to every neighbor.
    ///
    /// Handled by the runtime as a single staged value fanned out at delivery time, so a
    /// broadcast costs one write per neighbor and no outbox traffic. A node delivers at most
    /// one message per port per round: a later [`RoundCtx::send`] to a port overrides a
    /// broadcast queued in the same round, and a repeated broadcast replaces the previous
    /// one.
    pub fn broadcast(&mut self, msg: M) {
        *self.broadcast = Some(msg);
    }

    /// The node's private, reproducible random stream (independent across nodes).
    ///
    /// Derived on first use per run from the run's seed and the node identity — the stream
    /// (and its position) is exactly what an eager per-run initialization would serve, but
    /// runs that never ask pay nothing.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        let (stamp, seed, id) = self.rng_key;
        let fresh = !matches!(self.rng_slot, Some((s, _)) if *s == stamp);
        if fresh {
            *self.rng_slot = Some((stamp, crate::rng::node_rng(seed, id)));
        }
        &mut self.rng_slot.as_mut().expect("slot filled above").1
    }
}

/// Iterator over one round's arrivals, see [`RoundCtx::messages`].
///
/// Walks the stamp segment one 64-arc chunk at a time, pulling a SIMD match mask per chunk
/// and peeling set bits. `fold` is overridden with the tight two-level loop, so
/// internal-iteration consumers (`for_each` and adapters over it) skip the per-item state
/// machine of [`Messages::next`].
pub struct Messages<'b, M> {
    stamps: &'b [u64],
    payloads: &'b [Option<M>],
    read_tick: u64,
    /// Base port of the chunk `mask` refers to.
    chunk: usize,
    /// Base port of the next chunk to scan.
    next_chunk: usize,
    mask: u64,
}

impl<'b, M> Iterator for Messages<'b, M> {
    type Item = (usize, &'b M);

    #[inline]
    fn next(&mut self) -> Option<(usize, &'b M)> {
        loop {
            while self.mask != 0 {
                let port = self.chunk + self.mask.trailing_zeros() as usize;
                self.mask &= self.mask - 1;
                if let Some(msg) = &self.payloads[port] {
                    return Some((port, msg));
                }
            }
            if self.next_chunk >= self.stamps.len() {
                return None;
            }
            let end = (self.next_chunk + 64).min(self.stamps.len());
            self.mask =
                local_simd::stamp_match_mask64(&self.stamps[self.next_chunk..end], self.read_tick);
            self.chunk = self.next_chunk;
            self.next_chunk = end;
        }
    }

    #[inline]
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, (usize, &'b M)) -> B,
    {
        let mut acc = init;
        loop {
            while self.mask != 0 {
                let port = self.chunk + self.mask.trailing_zeros() as usize;
                self.mask &= self.mask - 1;
                if let Some(msg) = &self.payloads[port] {
                    acc = f(acc, (port, msg));
                }
            }
            if self.next_chunk >= self.stamps.len() {
                return acc;
            }
            let end = (self.next_chunk + 64).min(self.stamps.len());
            self.mask =
                local_simd::stamp_match_mask64(&self.stamps[self.next_chunk..end], self.read_tick);
            self.chunk = self.next_chunk;
            self.next_chunk = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_ctx_send_and_broadcast() {
        // Raw arena segments: only port 1 carries a message stamped with the read tick
        // (port 0 holds a stale stamp from an earlier round, port 2 was never written).
        let stamps = [3u64, 5, 0];
        let payloads: [Option<u32>; 3] = [Some(13), Some(42), None];
        let mut inbox: Vec<Incoming<u32>> = Vec::new();
        let mut staged = false;
        let mut outbox = Vec::new();
        let mut rng_slot = None;
        let neighbor_ids = [7u64, 8, 9];
        let mut bcast = None;
        let mut ctx = RoundCtx {
            round: 3,
            degree: 3,
            neighbor_ids: &neighbor_ids,
            inbox: &mut inbox,
            staged: &mut staged,
            stamps: &stamps,
            payloads: &payloads,
            read_tick: 5,
            outbox: &mut outbox,
            broadcast: &mut bcast,
            rng_slot: &mut rng_slot,
            rng_key: (1, 0, 7),
        };
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.neighbor_ids(), &[7, 8, 9]);
        assert_eq!(ctx.received_on(1), Some(&42));
        assert_eq!(ctx.received_on(0), None);
        assert_eq!(ctx.inbox().len(), 1);
        ctx.send(2, 7);
        ctx.broadcast(9);
        {
            use rand::RngCore;
            // The lazily-drawn stream is exactly node_rng(seed, id), kept across calls.
            let first = ctx.rng().next_u64();
            let mut reference = crate::rng::node_rng(0, 7);
            assert_eq!(first, reference.next_u64());
            assert_eq!(ctx.rng().next_u64(), reference.next_u64());
        }
        assert_eq!(outbox, vec![(2, 7)]);
        assert_eq!(bcast, Some(9));
        assert!(staged, "first inbox access must mark the segment staged");
        assert!(rng_slot.is_some(), "rng access must fill the slot");
    }

    #[test]
    #[should_panic(expected = "send on port")]
    fn send_out_of_range_panics() {
        let mut inbox: Vec<Incoming<u32>> = Vec::new();
        let mut staged = false;
        let mut outbox = Vec::new();
        let mut rng_slot = None;
        let mut bcast = None;
        let mut ctx = RoundCtx {
            round: 0,
            degree: 1,
            neighbor_ids: &[4],
            inbox: &mut inbox,
            staged: &mut staged,
            stamps: &[0],
            payloads: &[None],
            read_tick: 1,
            outbox: &mut outbox,
            broadcast: &mut bcast,
            rng_slot: &mut rng_slot,
            rng_key: (1, 0, 4),
        };
        ctx.send(1, 0);
    }
}

//! Optional per-round execution traces.
//!
//! Traces are used by the Figure-1 reproduction harness to show how an alternating algorithm
//! progresses: how many nodes are still active each round and how much communication happens.

use serde::{Deserialize, Serialize};

/// One round of an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// Round number (starting from 0).
    pub round: u64,
    /// Number of nodes that had not yet halted at the end of this round.
    pub active_nodes: usize,
    /// Messages delivered during this round.
    pub messages: u64,
}

/// A whole execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Per-round records, in order.
    pub rounds: Vec<RoundTrace>,
}

impl ExecutionTrace {
    /// Total number of messages delivered over the execution.
    pub fn total_messages(&self) -> u64 {
        self.rounds.iter().map(|r| r.messages).sum()
    }

    /// Round at which the number of active nodes first dropped to zero, if it did.
    pub fn quiescence_round(&self) -> Option<u64> {
        self.rounds.iter().find(|r| r.active_nodes == 0).map(|r| r.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_quiescence() {
        let trace = ExecutionTrace {
            rounds: vec![
                RoundTrace { round: 0, active_nodes: 4, messages: 10 },
                RoundTrace { round: 1, active_nodes: 2, messages: 6 },
                RoundTrace { round: 2, active_nodes: 0, messages: 1 },
            ],
        };
        assert_eq!(trace.total_messages(), 17);
        assert_eq!(trace.quiescence_round(), Some(2));
    }

    #[test]
    fn no_quiescence_when_nodes_remain() {
        let trace =
            ExecutionTrace { rounds: vec![RoundTrace { round: 0, active_nodes: 1, messages: 0 }] };
        assert_eq!(trace.quiescence_round(), None);
        assert_eq!(trace.total_messages(), 0);
    }
}

//! Graph-level view of a LOCAL algorithm.
//!
//! [`GraphAlgorithm`] is the execution-level interface consumed by the paper's transformers:
//! "run this algorithm on this (sub)graph with these inputs, for at most `budget` rounds, and
//! tell me the outputs and how many rounds you used". Every [`ProgramSpec`] is automatically a
//! `GraphAlgorithm` (the runtime drives its node automata), but composite algorithms — e.g. an
//! algorithm that first computes a partition and then runs a colouring phase on each part, or
//! one that operates on the line graph — can implement the trait directly, with their round
//! count justified by the composition bound of Observation 2.1.

use crate::graph::Graph;
use crate::program::ProgramSpec;
use crate::runner::{run, Execution, RunConfig};
use crate::session::{run_view, Session};
use crate::view::GraphView;

/// The outcome of executing a [`GraphAlgorithm`].
#[derive(Debug, Clone)]
pub struct AlgoRun<O> {
    /// Output per node, indexed like the graph the algorithm was executed on.
    pub outputs: Vec<O>,
    /// Number of rounds charged to the execution.
    pub rounds: u64,
    /// Total messages delivered (summed over composed phases; synthetic black boxes that
    /// simulate no real communication report 0).
    pub messages: u64,
    /// `true` when every node terminated by itself within the budget.
    pub completed: bool,
}

impl<O> AlgoRun<O> {
    /// An empty run (for the empty graph).
    pub fn empty() -> Self {
        AlgoRun { outputs: Vec::new(), rounds: 0, messages: 0, completed: true }
    }
}

/// A LOCAL algorithm seen as a function from a configuration `(G, x)` to an output vector,
/// with explicit round accounting and an optional round budget (the paper's *restriction to
/// `i` rounds*).
///
/// Implementations must be **budget-respecting**: the reported `rounds` never exceeds the
/// budget, and when the budget cuts the execution short every node still receives *some*
/// output (possibly meaningless — downstream pruning algorithms take care of that).
///
/// The `Send + Sync` supertrait and the `Send` bounds on the associated types let batch
/// schedulers (the `local-engine` crate) execute algorithms concurrently across experiment
/// cells and move their outputs between worker threads.
pub trait GraphAlgorithm: Send + Sync {
    /// Per-node input type `x(v)`.
    type Input: Clone + Send + Sync;
    /// Per-node output type `y(v)`.
    type Output: Clone + Send;

    /// Executes the algorithm.
    fn execute(
        &self,
        graph: &Graph,
        inputs: &[Self::Input],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<Self::Output>;

    /// Executes the algorithm on a live [`GraphView`], reusing the session's buffers.
    ///
    /// This is the zero-rebuild entry point used by the alternating drivers: pruning shrinks
    /// the view in place and the next attempt runs here without materializing a subgraph.
    /// The contract is strict equivalence — for any view, this must return exactly what
    /// [`GraphAlgorithm::execute`] would return on [`GraphView::materialize`]'s graph.
    ///
    /// The default implementation materializes and delegates — through the session's
    /// epoch-keyed cache, so consecutive attempts on an unchanged configuration copy the
    /// subgraph once, not once per attempt. Node-automaton algorithms (every [`ProgramSpec`])
    /// override it with a direct view execution, and composite algorithms should forward to
    /// their phases' `execute_view` when their global computation permits.
    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[Self::Input],
        budget: Option<u64>,
        seed: u64,
        session: &mut Session,
    ) -> AlgoRun<Self::Output> {
        let sub = session.materialized_graph(view);
        self.execute(sub, inputs, budget, seed)
    }
}

/// Every node-automaton specification is a graph algorithm: the runtime drives it.
impl<S: ProgramSpec> GraphAlgorithm for S {
    type Input = S::Input;
    type Output = S::Output;

    fn execute(
        &self,
        graph: &Graph,
        inputs: &[Self::Input],
        budget: Option<u64>,
        seed: u64,
    ) -> AlgoRun<Self::Output> {
        let cfg = RunConfig { seed, max_rounds: budget, ..RunConfig::default() };
        let exec = run(graph, inputs, self, &cfg);
        AlgoRun {
            outputs: exec.outputs,
            rounds: exec.rounds,
            messages: exec.messages,
            completed: exec.completed,
        }
    }

    fn execute_view(
        &self,
        view: &GraphView<'_>,
        inputs: &[Self::Input],
        budget: Option<u64>,
        seed: u64,
        session: &mut Session,
    ) -> AlgoRun<Self::Output> {
        let cfg = RunConfig { seed, max_rounds: budget, ..RunConfig::default() };
        let Execution { outputs, rounds, termination, halted, messages, completed, .. } =
            run_view(view, inputs, self, &cfg, session);
        // The per-node vectors AlgoRun does not carry go straight back to the session pool,
        // keeping repeated attempts on an unchanged configuration allocation-free.
        session.recycle_flags(termination, halted);
        AlgoRun { outputs, rounds, messages, completed }
    }
}

/// A boxed, object-safe graph algorithm (used by the transformer framework, which treats the
/// non-uniform algorithm as a black box).
pub type DynAlgorithm<I, O> = Box<dyn GraphAlgorithm<Input = I, Output = O> + Send + Sync>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::program::{Action, NodeInit, NodeProgram, RoundCtx};

    struct ConstSpec(u32);
    struct ConstProg(u32);
    impl NodeProgram for ConstProg {
        type Msg = ();
        type Output = u32;
        fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) -> Action<u32> {
            Action::Halt(self.0)
        }
    }
    impl ProgramSpec for ConstSpec {
        type Input = ();
        type Msg = ();
        type Output = u32;
        type Prog = ConstProg;
        fn build(&self, _init: &NodeInit<()>) -> ConstProg {
            ConstProg(self.0)
        }
        fn default_output(&self, _init: &NodeInit<()>) -> u32 {
            0
        }
    }

    #[test]
    fn spec_is_a_graph_algorithm() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let run = ConstSpec(7).execute(&g, &[(); 3], None, 0);
        assert_eq!(run.outputs, vec![7, 7, 7]);
        assert_eq!(run.rounds, 0);
        assert!(run.completed);
    }

    #[test]
    fn boxed_algorithm_is_usable() {
        let alg: DynAlgorithm<(), u32> = Box::new(ConstSpec(3));
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let run = alg.execute(&g, &[(); 2], Some(10), 1);
        assert_eq!(run.outputs, vec![3, 3]);
    }

    #[test]
    fn empty_run_constructor() {
        let run: AlgoRun<u32> = AlgoRun::empty();
        assert!(run.outputs.is_empty());
        assert_eq!(run.rounds, 0);
    }
}

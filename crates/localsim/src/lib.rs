//! # local-runtime — a synchronous LOCAL-model simulator
//!
//! This crate is the execution substrate for the reproduction of
//! *"Toward more localized local algorithms: removing assumptions concerning global
//! knowledge"* (Korman, Sereni, Viennot; PODC 2011 / Distributed Computing 2013).
//!
//! It models the classical **LOCAL** model (Peleg): the network is an undirected graph, all
//! nodes wake up simultaneously, computation proceeds in fault-free synchronous rounds, in
//! each round every node may send unrestricted-size messages to its neighbors and perform
//! arbitrary local computation, and a node terminates by writing its final output.
//!
//! The pieces:
//!
//! * [`Graph`] — CSR graphs with unique node identities and induced-subgraph extraction
//!   (needed between the iterations of the paper's *alternating algorithms*).
//! * [`NodeProgram`] / [`ProgramSpec`] — per-node automata and their factories. Uniform
//!   algorithms receive no global knowledge; non-uniform algorithms receive their parameter
//!   guesses through the spec.
//! * [`run`] — the round-driving engine with a round budget (the paper's *restriction to `i`
//!   rounds*) and exact round accounting.
//! * [`GraphView`] / [`Session`] — the zero-rebuild execution core: live-mask views that let
//!   pruning shrink a configuration without copying the CSR, and reusable sessions whose
//!   frontier-driven round loop ([`run_view`]) touches only active nodes and live inboxes —
//!   byte-identical to [`run`] on the materialized subgraph.
//!
//! ## Example
//!
//! A 2-round flooding algorithm in which every node outputs the largest identity within
//! distance 2:
//!
//! ```
//! use local_runtime::{run, Action, Graph, NodeInit, NodeProgram, ProgramSpec, RoundCtx, RunConfig};
//!
//! struct Flood { radius: u64 }
//! struct FloodProg { radius: u64, best: u64 }
//!
//! impl NodeProgram for FloodProg {
//!     type Msg = u64;
//!     type Output = u64;
//!     fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) -> Action<u64> {
//!         for m in ctx.inbox() { self.best = self.best.max(m.msg); }
//!         if ctx.round() == self.radius { return Action::Halt(self.best); }
//!         ctx.broadcast(self.best);
//!         Action::Continue
//!     }
//! }
//!
//! impl ProgramSpec for Flood {
//!     type Input = ();
//!     type Msg = u64;
//!     type Output = u64;
//!     type Prog = FloodProg;
//!     fn build(&self, init: &NodeInit<()>) -> FloodProg {
//!         FloodProg { radius: self.radius, best: init.id }
//!     }
//!     fn default_output(&self, _init: &NodeInit<()>) -> u64 { 0 }
//! }
//!
//! let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)])?;
//! let exec = run(&g, &vec![(); 4], &Flood { radius: 2 }, &RunConfig::default());
//! assert_eq!(exec.rounds, 2);
//! assert_eq!(exec.outputs[0], 2); // node 0 sees ids {0, 1, 2} within distance 2
//! # Ok::<(), local_runtime::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod graph;
pub mod program;
pub mod rng;
pub mod runner;
pub mod session;
pub mod trace;
pub mod view;

pub use algorithm::{AlgoRun, DynAlgorithm, GraphAlgorithm};
pub use graph::{Graph, GraphError, NodeId, NodeIndex};
pub use program::{Action, Incoming, NodeInit, NodeProgram, ProgramSpec, RoundCtx};
pub use rng::{mix_seed, node_rng};
pub use runner::{run, run_sequence, Execution, RunConfig};
pub use session::{run_view, Session, Topology};
pub use trace::{ExecutionTrace, RoundTrace};
pub use view::GraphView;

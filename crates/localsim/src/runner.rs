//! The synchronous LOCAL-model execution engine.
//!
//! [`run`] drives one [`ProgramSpec`] over a [`Graph`] in lock-step rounds, with an optional
//! round budget (the paper's *algorithm restricted to `i` rounds*, Section 2) and a hard
//! safety cap for algorithms that would otherwise never terminate (a non-uniform algorithm
//! executed with bad guesses "may not even terminate", Section 2).
//!
//! Round accounting follows the paper: a node's termination time is the number of rounds it
//! executed before halting, and the running time of an execution is the maximum termination
//! time over all nodes.

use crate::graph::Graph;
use crate::program::ProgramSpec;
use crate::session::{run_core, Session};
use crate::trace::ExecutionTrace;

/// Configuration of one execution.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Seed for the per-node random streams. Two runs with the same seed, graph, and spec are
    /// identical.
    pub seed: u64,
    /// Round budget: when `Some(b)`, the execution is stopped after `b` rounds and every node
    /// that has not halted is forced to the spec's default output.
    pub max_rounds: Option<u64>,
    /// Hard safety cap applied when `max_rounds` is `None`; prevents runaway executions of
    /// incorrect or diverging algorithms.
    pub hard_cap: u64,
    /// Whether to record a per-round trace (active node counts, message counts).
    pub record_trace: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { seed: 0, max_rounds: None, hard_cap: 1_000_000, record_trace: false }
    }
}

impl RunConfig {
    /// A configuration with the given seed and no budget.
    pub fn seeded(seed: u64) -> Self {
        RunConfig { seed, ..RunConfig::default() }
    }

    /// Sets the round budget (the restriction to `budget` rounds).
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.max_rounds = Some(budget);
        self
    }

    /// Enables per-round tracing.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }
}

/// The result of one execution.
#[derive(Debug, Clone)]
pub struct Execution<O> {
    /// Final output `y(v)` per node (forced to the default output for nodes that hit the
    /// budget without halting).
    pub outputs: Vec<O>,
    /// Number of rounds after which every node had terminated (or the budget, if hit).
    pub rounds: u64,
    /// Per-node termination time.
    pub termination: Vec<u64>,
    /// Per-node flag: did the node halt on its own (as opposed to being cut off)?
    pub halted: Vec<bool>,
    /// Total number of messages delivered.
    pub messages: u64,
    /// `true` when every node halted on its own within the budget / cap.
    pub completed: bool,
    /// Optional per-round trace.
    pub trace: Option<ExecutionTrace>,
}

impl<O> Execution<O> {
    /// `true` if every node halted by itself (no forced outputs).
    pub fn all_halted(&self) -> bool {
        self.halted.iter().all(|&h| h)
    }
}

/// Runs `spec` on `graph` with per-node inputs `inputs`.
///
/// Drives the frontier-based loop of [`crate::session`] over the full graph with a throwaway
/// [`Session`]; callers that execute many runs (alternating drivers, batch schedulers) should
/// hold a session and use [`crate::session::run_view`] to reuse its buffers.
///
/// # Panics
///
/// Panics if `inputs.len() != graph.node_count()`.
pub fn run<S: ProgramSpec>(
    graph: &Graph,
    inputs: &[S::Input],
    spec: &S,
    cfg: &RunConfig,
) -> Execution<S::Output> {
    run_core(graph, inputs, spec, cfg, &mut Session::new())
}

/// Runs `first` and then `second`, feeding the outputs of `first` to `second` as inputs
/// (the composition `A1; A2` of Observation 2.1). The reported round count is the sum of the
/// two running times, which upper-bounds the running time of the composed algorithm.
pub fn run_sequence<S1, S2>(
    graph: &Graph,
    inputs: &[S1::Input],
    first: &S1,
    second: &S2,
    cfg: &RunConfig,
) -> (Execution<S1::Output>, Execution<S2::Output>)
where
    S1: ProgramSpec,
    S2: ProgramSpec<Input = S1::Output>,
{
    let exec1 = run(graph, inputs, first, cfg);
    let exec2 = run(graph, &exec1.outputs, second, cfg);
    (exec1, exec2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::program::{Action, NodeInit, NodeProgram, ProgramSpec, RoundCtx};

    /// Every node immediately outputs its own identity.
    struct EchoIdSpec;
    struct EchoId {
        id: u64,
    }
    impl NodeProgram for EchoId {
        type Msg = ();
        type Output = u64;
        fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) -> Action<u64> {
            Action::Halt(self.id)
        }
    }
    impl ProgramSpec for EchoIdSpec {
        type Input = ();
        type Msg = ();
        type Output = u64;
        type Prog = EchoId;
        fn build(&self, init: &NodeInit<()>) -> EchoId {
            EchoId { id: init.id }
        }
        fn default_output(&self, _init: &NodeInit<()>) -> u64 {
            u64::MAX
        }
    }

    /// Every node floods its identity and outputs the maximum identity it has seen after
    /// exactly `radius` rounds of gossip.
    struct MaxIdSpec {
        radius: u64,
    }
    struct MaxIdProg {
        radius: u64,
        best: u64,
    }
    impl NodeProgram for MaxIdProg {
        type Msg = u64;
        type Output = u64;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) -> Action<u64> {
            for m in ctx.inbox() {
                self.best = self.best.max(m.msg);
            }
            if ctx.round() == self.radius {
                return Action::Halt(self.best);
            }
            ctx.broadcast(self.best);
            Action::Continue
        }
    }
    impl ProgramSpec for MaxIdSpec {
        type Input = ();
        type Msg = u64;
        type Output = u64;
        type Prog = MaxIdProg;
        fn build(&self, init: &NodeInit<()>) -> MaxIdProg {
            MaxIdProg { radius: self.radius, best: init.id }
        }
        fn default_output(&self, _init: &NodeInit<()>) -> u64 {
            0
        }
    }

    /// Never halts.
    struct ForeverSpec;
    struct Forever;
    impl NodeProgram for Forever {
        type Msg = ();
        type Output = u32;
        fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) -> Action<u32> {
            Action::Continue
        }
    }
    impl ProgramSpec for ForeverSpec {
        type Input = ();
        type Msg = ();
        type Output = u32;
        type Prog = Forever;
        fn build(&self, _init: &NodeInit<()>) -> Forever {
            Forever
        }
        fn default_output(&self, _init: &NodeInit<()>) -> u32 {
            99
        }
    }

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn zero_round_algorithm_runs_in_zero_rounds() {
        let g = path(4);
        let exec = run(&g, &[(); 4], &EchoIdSpec, &RunConfig::default());
        assert!(exec.completed);
        assert_eq!(exec.rounds, 0);
        assert_eq!(exec.outputs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn gossip_reaches_distance_r() {
        let g = path(5);
        // Radius 4 = diameter, so everyone learns the max identity 4.
        let exec = run(&g, &[(); 5], &MaxIdSpec { radius: 4 }, &RunConfig::default());
        assert!(exec.completed);
        assert_eq!(exec.rounds, 4);
        assert!(exec.outputs.iter().all(|&o| o == 4));
    }

    #[test]
    fn gossip_limited_radius_sees_only_ball() {
        let g = path(5);
        let exec = run(&g, &[(); 5], &MaxIdSpec { radius: 1 }, &RunConfig::default());
        // Node 0 sees only node 1 after one round.
        assert_eq!(exec.outputs[0], 1);
        assert_eq!(exec.outputs[4], 4);
        assert_eq!(exec.outputs[2], 3);
    }

    #[test]
    fn budget_cuts_execution_and_forces_default_outputs() {
        let g = path(3);
        let cfg = RunConfig::default().with_budget(5);
        let exec = run(&g, &[(); 3], &ForeverSpec, &cfg);
        assert!(!exec.completed);
        assert!(exec.outputs.iter().all(|&o| o == 99));
        assert_eq!(exec.rounds, 5);
        assert!(exec.halted.iter().all(|&h| !h));
    }

    #[test]
    fn hard_cap_stops_divergent_algorithms() {
        let g = path(2);
        let cfg = RunConfig { hard_cap: 10, ..RunConfig::default() };
        let exec = run(&g, &[(); 2], &ForeverSpec, &cfg);
        assert!(!exec.completed);
        assert_eq!(exec.rounds, 10);
    }

    #[test]
    fn trace_records_every_round() {
        let g = path(5);
        let cfg = RunConfig::default().with_trace();
        let exec = run(&g, &[(); 5], &MaxIdSpec { radius: 3 }, &cfg);
        let trace = exec.trace.expect("trace requested");
        assert_eq!(trace.rounds.len(), 4); // rounds 0..=3
        assert!(trace.rounds[0].messages > 0);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let g = path(6);
        let a = run(&g, &[(); 6], &MaxIdSpec { radius: 2 }, &RunConfig::seeded(7));
        let b = run(&g, &[(); 6], &MaxIdSpec { radius: 2 }, &RunConfig::seeded(7));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn empty_graph_executes_trivially() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let exec = run(&g, &Vec::<()>::new(), &EchoIdSpec, &RunConfig::default());
        assert!(exec.completed);
        assert_eq!(exec.rounds, 0);
        assert!(exec.outputs.is_empty());
    }

    #[test]
    fn sequence_composes_outputs() {
        // First algorithm outputs identities, second doubles its input.
        struct DoubleSpec;
        struct Double {
            value: u64,
        }
        impl NodeProgram for Double {
            type Msg = ();
            type Output = u64;
            fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) -> Action<u64> {
                Action::Halt(self.value * 2)
            }
        }
        impl ProgramSpec for DoubleSpec {
            type Input = u64;
            type Msg = ();
            type Output = u64;
            type Prog = Double;
            fn build(&self, init: &NodeInit<u64>) -> Double {
                Double { value: *init.input }
            }
            fn default_output(&self, _init: &NodeInit<u64>) -> u64 {
                0
            }
        }
        let g = path(3);
        let (e1, e2) = run_sequence(&g, &[(); 3], &EchoIdSpec, &DoubleSpec, &RunConfig::default());
        assert_eq!(e1.outputs, vec![0, 1, 2]);
        assert_eq!(e2.outputs, vec![0, 2, 4]);
        // Observation 2.1: composed running time bounded by the sum.
        assert!(e1.rounds + e2.rounds <= 1);
    }
}

//! Quickstart: compute an MIS with zero global knowledge.
//!
//! The non-uniform baseline needs good estimates of Δ and the largest identity; the uniform
//! algorithm produced by Theorem 1 needs nothing beyond each node's own identity, yet finishes
//! within a constant factor of the baseline's rounds.
//!
//! Run with `cargo run --example quickstart`.

use localkit::graphs::{gnp, GraphParams};
use localkit::uniform::catalog;
use localkit::uniform::problem::{MisProblem, Problem};

fn main() {
    let graph = gnp(400, 12.0 / 400.0, 42);
    let n = graph.node_count();
    let params = GraphParams::of(&graph);
    println!("graph: n = {n}, Δ = {}, max id = {}", params.max_degree, params.max_id);

    // Non-uniform baseline: every node must be told Δ and m in advance.
    let black_box = catalog::coloring_mis_black_box();
    let baseline = (black_box.build)(&[params.max_degree, params.max_id]);
    let nu = baseline.execute(&graph, &vec![(); n], None, 0);
    MisProblem.validate(&graph, &vec![(); n], &nu.outputs).expect("baseline must be correct");
    println!("non-uniform MIS (correct guesses): {} rounds", nu.rounds);

    // Uniform algorithm: Theorem 1 (budget doubling + MIS pruning). No global knowledge.
    let uniform = catalog::uniform_coloring_mis();
    let run = uniform.solve(&graph, &vec![(); n], 0);
    MisProblem.validate(&graph, &vec![(); n], &run.outputs).expect("uniform must be correct");
    println!(
        "uniform MIS (no global knowledge): {} rounds over {} iterations ({} attempts)",
        run.rounds, run.iterations, run.subiterations
    );
    println!("overhead ratio: {:.2}×", run.rounds as f64 / nu.rounds.max(1) as f64);
}

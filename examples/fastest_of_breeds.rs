//! Scenario: one binary, every topology.
//!
//! Different MIS algorithms win on different networks (low degree, low arboricity, dense).
//! Theorem 4 composes the uniform versions into a single uniform algorithm that matches the
//! best of them on every instance — the content of Corollary 1(i).
//!
//! Run with `cargo run --example fastest_of_breeds`.

use localkit::graphs::Family;
use localkit::uniform::catalog;
use localkit::uniform::problem::{MisProblem, Problem};

fn main() {
    println!(
        "{:<18} {:>6} {:>12} {:>12} {:>12}",
        "family", "n", "combined", "Δ-based", "arboricity"
    );
    for family in [Family::Forest3, Family::Regular6, Family::DenseGnp, Family::Grid] {
        let graph = family.generate(200, 5);
        let n = graph.node_count();
        let combined = catalog::corollary1_mis().solve(&graph, &vec![(); n], 0);
        MisProblem.validate(&graph, &vec![(); n], &combined.outputs).expect("valid MIS");
        let delta_based = catalog::uniform_coloring_mis().solve(&graph, &vec![(); n], 0);
        let arboricity = catalog::uniform_arboricity_mis().solve(&graph, &vec![(); n], 0);
        println!(
            "{:<18} {:>6} {:>12} {:>12} {:>12}",
            family.name(),
            n,
            combined.rounds,
            delta_based.rounds,
            arboricity.rounds
        );
    }
}

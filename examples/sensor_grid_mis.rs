//! Scenario: clusterhead election in a sensor grid.
//!
//! A deployed sensor field (modelled as a unit-disk graph) must elect clusterheads — an MIS —
//! but no sensor knows the size of the deployment or the maximum radio degree. The Corollary
//! 1(i) combinator (Theorem 4 over three uniform MIS algorithms) handles every density regime
//! without configuration.
//!
//! Run with `cargo run --example sensor_grid_mis`.

use localkit::graphs::{unit_disk, GraphParams};
use localkit::uniform::catalog;
use localkit::uniform::problem::{MisProblem, Problem};

fn main() {
    for (label, n, radius) in
        [("sparse field", 300usize, 0.06), ("dense field", 300, 0.12), ("very dense", 200, 0.25)]
    {
        let graph = unit_disk(n, radius, 7);
        let nodes = graph.node_count();
        let params = GraphParams::of(&graph);
        let combiner = catalog::corollary1_mis();
        let run = combiner.solve(&graph, &vec![(); nodes], 1);
        MisProblem.validate(&graph, &vec![(); nodes], &run.outputs).expect("MIS must be valid");
        let heads = run.outputs.iter().filter(|&&b| b).count();
        println!(
            "{label:12}  n = {nodes:4}  Δ = {:3}  clusterheads = {heads:4}  rounds = {:6}",
            params.max_degree, run.rounds
        );
    }
}

//! Scenario: pairing replicas for state exchange, with certainty.
//!
//! A weak Monte-Carlo matching/ruling-set primitive is cheap but occasionally wrong; the
//! Theorem 2 transformer turns it into a Las Vegas algorithm — always correct, expected
//! running time unchanged — without telling any node how large the system is.
//!
//! Run with `cargo run --example las_vegas_matching`.

use localkit::graphs::{gnp_avg_degree, GraphParams};
use localkit::uniform::catalog;
use localkit::uniform::problem::{MatchingProblem, Problem, RulingSetProblem};

fn main() {
    let graph = gnp_avg_degree(500, 6.0, 3);
    let n = graph.node_count();
    let params = GraphParams::of(&graph);
    println!("replica graph: n = {n}, Δ = {}", params.max_degree);

    // Uniform deterministic maximal matching (Theorem 1 + P_MM).
    let matching = catalog::uniform_matching().solve(&graph, &vec![(); n], 0);
    MatchingProblem.validate(&graph, &vec![(); n], &matching.outputs).expect("valid matching");
    let pairs = matching.outputs.iter().filter(|p| p.is_some()).count() / 2;
    println!("uniform maximal matching: {pairs} pairs in {} rounds", matching.rounds);

    // Uniform Las Vegas (2, 2)-ruling set from a weak Monte-Carlo black box (Theorem 2).
    let mut total = 0u64;
    let runs = 5;
    for seed in 0..runs {
        let rs = catalog::uniform_ruling_set(2).solve(&graph, &vec![(); n], seed);
        RulingSetProblem::two(2)
            .validate(&graph, &vec![(); n], &rs.outputs)
            .expect("valid ruling set");
        total += rs.rounds;
    }
    println!(
        "uniform Las Vegas (2,2)-ruling set: always correct, mean {:.1} rounds over {runs} runs",
        total as f64 / runs as f64
    );
}

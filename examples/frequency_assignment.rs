//! Scenario: frequency assignment in a wireless mesh.
//!
//! Each access point must pick a frequency different from all interfering neighbours. The
//! number of available frequencies should scale with the local interference degree — but no
//! node knows the network-wide maximum degree. Theorem 5 turns the classical non-uniform
//! λ(Δ+1)-colouring into a uniform O(λ·Δ) one.
//!
//! Run with `cargo run --example frequency_assignment`.

use localkit::algos::checkers;
use localkit::graphs::{preferential_attachment, GraphParams};
use localkit::uniform::catalog;

fn main() {
    // A mesh with skewed degrees: hubs interfere with many access points.
    let graph = preferential_attachment(350, 3, 11);
    let params = GraphParams::of(&graph);
    println!("mesh: n = {}, Δ = {}", graph.node_count(), params.max_degree);

    for lambda in [1u64, 2, 4] {
        let transformer = catalog::uniform_lambda_coloring(lambda);
        let run = transformer.solve(&graph, 0);
        checkers::check_coloring(&graph, &run.colors).expect("assignment must be conflict-free");
        let used = checkers::palette_size(&run.colors);
        println!(
            "λ = {lambda}: {used:4} frequencies used (bound {:4}), {:5} rounds, {} degree layers",
            transformer.palette_bound(params.max_degree),
            run.rounds,
            run.layers
        );
    }
}

//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this vendored crate re-implements the
//! small API subset the workspace actually uses: [`RngCore`], [`SeedableRng`], the [`Rng`]
//! extension trait (`gen`, `gen_bool`, `gen_range`), and [`seq::SliceRandom::shuffle`].
//! The distributions are uniform and deterministic but are **not** bit-compatible with the
//! real `rand` crate; all reproducibility guarantees in this workspace are internal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (same entry point as the real crate).
    fn seed_from_u64(state: u64) -> Self;
}

/// A value that can be sampled uniformly from a generator (the real crate's `Standard`
/// distribution, folded into one helper trait).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that can be sampled uniformly (the real crate's `SampleRange`).
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, span)` by widening multiply (tiny bias, irrelevant here).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`] (the real crate's `Rng` extension trait).
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        self.gen::<f64>() < p
    }

    /// A uniform value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (the only member of the real trait this workspace uses).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_samples_stay_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0u64..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Provides the API subset the workspace's benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::measurement_time`] /
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock loop that prints a mean and
//! min/max per benchmark. No statistics, plots, or baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort without intrinsics).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to every registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _name: name, sample_size: 10, measurement_time: Duration::from_secs(2) }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let mut group = BenchmarkGroup {
            _name: String::new(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        };
        group.bench_function(id, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    _name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the per-benchmark time budget; sampling stops early once it is exhausted.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.measurement_time = budget;
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: Vec::new() };
        let started = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut bencher);
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {id}: no samples collected");
        } else {
            let total: Duration = samples.iter().sum();
            let mean = total / samples.len() as u32;
            let min = samples.iter().min().expect("non-empty");
            let max = samples.iter().max().expect("non-empty");
            println!("  {id}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)", samples.len());
        }
        self
    }

    /// Ends the group (output is already printed incrementally).
    pub fn finish(self) {}
}

/// Runs and times the closed-over workload.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (one sample per call, unlike real criterion's
    /// batching — adequate for the coarse workloads in this workspace).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` to run the listed groups (CLI arguments from `cargo bench` are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("stub");
        let mut runs = 0u32;
        group.sample_size(3).measurement_time(Duration::from_secs(5));
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }
}

//! Offline stand-in for the [`serde_derive`](https://crates.io/crates/serde_derive) crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the vendored
//! `serde` stub's value-tree model, by hand-parsing the item's token stream (no `syn`/`quote`
//! available offline). Supported shapes — exactly what this workspace derives on:
//!
//! * non-generic structs with named fields → serialized as a string-keyed map;
//! * non-generic enums whose variants are all fieldless → serialized as the variant name.
//!
//! Anything else produces a `compile_error!` naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed item.
enum Item {
    /// Struct name + named fields.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().expect("valid error token stream")
}

/// Skips attributes (`#[...]`) and visibility (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match (tokens.get(i), tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            (Some(TokenTree::Ident(id)), next) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = next {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde derive"
            ));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => {
            return Err(format!(
                "`{name}`: only brace-bodied items are supported (no tuple structs / units)"
            ))
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    if kind == "struct" {
        Ok(Item::Struct(name, parse_named_fields(&body)?))
    } else {
        Ok(Item::Enum(name, parse_unit_variants(&body)?))
    }
}

fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{field}`, found {other:?}")),
        }
        // Consume the type: tokens until a comma outside any angle-bracket nesting.
        let mut angle_depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => {
                return Err(format!(
                    "variant `{variant}` carries data ({other:?}); the vendored serde derive only supports fieldless enums"
                ))
            }
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// `#[derive(Serialize)]` for named-field structs and fieldless enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let entries: String = fields
                .iter()
                .map(|f| format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String = variants.iter().map(|v| format!("{name}::{v} => {v:?},")).collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Str((match self {{ {arms} }}).to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

/// `#[derive(Deserialize)]` for named-field structs and fieldless enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(message) => return compile_error(&message),
    };
    let code = match item {
        Item::Struct(name, fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(\
                             value.get({f:?}).unwrap_or(&serde::Value::Null))?,"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(value: &serde::Value) -> Result<Self, String> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let arms: String =
                variants.iter().map(|v| format!("Some({v:?}) => Ok({name}::{v}),")).collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn from_value(value: &serde::Value) -> Result<Self, String> {{\n\
                         match value.as_str() {{\n\
                             {arms}\n\
                             other => Err(format!(\"unknown {name} variant: {{other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

//! Offline stand-in for the [`serde_json`](https://crates.io/crates/serde_json) crate.
//!
//! Renders the vendored `serde` [`Value`] tree as JSON text and parses JSON text back into
//! [`Value`]s. Covers the workspace's needs: [`to_string`], [`to_string_pretty`],
//! [`to_value`], and [`from_str`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Value;

/// An error produced while parsing JSON text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the parser had reached.
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Renders a serializable value as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders a serializable value as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(value: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Keep integral floats recognisable as numbers with a fractional part.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null"); // JSON has no NaN / Infinity.
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => render_block('[', ']', items.len(), indent, depth, out, |i, out| {
            render(&items[i], indent, depth + 1, out);
        }),
        Value::Map(entries) => {
            render_block('{', '}', entries.len(), indent, depth, out, |i, out| {
                render_string(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&entries[i].1, indent, depth + 1, out);
            })
        }
    }
}

fn render_block(
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(i, out);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * depth));
        }
    }
    out.push(close);
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> Error {
        Error { message: message.to_owned(), offset: self.pos }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.bytes.get(self.pos) {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                loop {
                    self.skip_whitespace();
                    if self.eat("]") {
                        return Ok(Value::Seq(items));
                    }
                    if !items.is_empty() {
                        if !self.eat(",") {
                            return Err(self.error("expected `,` or `]` in array"));
                        }
                        self.skip_whitespace();
                    }
                    items.push(self.parse_value()?);
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                loop {
                    self.skip_whitespace();
                    if self.eat("}") {
                        return Ok(Value::Map(entries));
                    }
                    if !entries.is_empty() {
                        if !self.eat(",") {
                            return Err(self.error("expected `,` or `}` in object"));
                        }
                        self.skip_whitespace();
                    }
                    let key = self.parse_string()?;
                    self.skip_whitespace();
                    if !self.eat(":") {
                        return Err(self.error("expected `:` after object key"));
                    }
                    let value = self.parse_value()?;
                    entries.push((key, value));
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if !self.eat("\"") {
            return Err(self.error("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of plain bytes in one step and validate it
                    // once. (`"` and `\` are ASCII, so a bytewise scan can never split a
                    // multi-byte UTF-8 character.) Validating per character instead would
                    // re-scan the whole remaining input each time — quadratic in document
                    // size, which turns the megabyte-scale telemetry lines the worker
                    // protocol ships into minutes of parsing.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() {
            return Err(self.error("expected a JSON value"));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::U64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&WrappedValue(v)).unwrap(), r#"{"a":1,"b":[true,null]}"#);
    }

    // Serialize is implemented for concrete types; wrap a Value for the tests.
    struct WrappedValue(Value);
    impl serde::Serialize for WrappedValue {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn round_trip_through_parser() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("grid \"9\"".into())),
            ("ratio".into(), Value::F64(1.5)),
            ("n".into(), Value::U64(100)),
        ]);
        let text = to_string_pretty(&WrappedValue(v.clone())).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parses_nested_structures() {
        let v = from_str(r#" {"xs": [1, 2.5, -3], "ok": true} "#).unwrap();
        assert_eq!(v.get("xs").unwrap().as_seq().unwrap().len(), 3);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn string_chunks_respect_escapes_and_multibyte_utf8() {
        // Escapes interleaved with plain runs and multi-byte characters: the chunked
        // fast path must break exactly at `"` and `\` and nowhere else.
        let v = from_str(r#""héllo \"wörld\" — tab:\there""#).unwrap();
        assert_eq!(v, Value::Str("héllo \"wörld\" — tab:\there".into()));
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn large_documents_parse_in_linear_time() {
        // A ~1MB document dominated by strings. With per-character revalidation this
        // takes minutes; the chunked scan finishes instantly. The loose 10s bound only
        // trips on a complexity regression, not on a slow machine.
        let item = r#"{"name":"a reasonably long label string for the scaling test","v":1}"#;
        let doc = format!("[{}]", vec![item; 15_000].join(","));
        let started = std::time::Instant::now();
        let parsed = from_str(&doc).unwrap();
        assert_eq!(parsed.as_seq().unwrap().len(), 15_000);
        assert!(
            started.elapsed() < std::time::Duration::from_secs(10),
            "string parsing is super-linear again: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
    }
}

//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! The real serde is a zero-copy serialization *framework*; this vendored stand-in collapses
//! it to the part this workspace needs: converting data structures to and from a dynamic
//! [`Value`] tree that `serde_json` renders as JSON. `#[derive(Serialize, Deserialize)]`
//! works through the sibling `serde_derive` stub for non-generic structs with named fields
//! and for fieldless enums — exactly the shapes this workspace derives on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A dynamically typed serialization tree (the subset of JSON's data model we need).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (kept exact; not folded into `F64`).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of a [`Value::Seq`], if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The unsigned integer payload, if this is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) => u64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// The float payload (integers are widened), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The string payload, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self`, reporting a human-readable error on shape mismatch.
    fn from_value(value: &Value) -> Result<Self, String>;
}

// ------------------------------------------------------------------ primitive impls ---------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, String> {
                let raw = value.as_u64().ok_or_else(|| format!("expected unsigned integer, got {value:?}"))?;
                <$t>::try_from(raw).map_err(|_| format!("{raw} out of range for {}", stringify!($t)))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, String> {
                match value {
                    Value::I64(x) => <$t>::try_from(*x).map_err(|_| format!("{x} out of range")),
                    Value::U64(x) => <$t>::try_from(*x).map_err(|_| format!("{x} out of range")),
                    _ => Err(format!("expected integer, got {value:?}")),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, String> {
        value.as_f64().ok_or_else(|| format!("expected number, got {value:?}"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, String> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(format!("expected bool, got {value:?}")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, String> {
        value.as_str().map(str::to_owned).ok_or_else(|| format!("expected string, got {value:?}"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(()),
            _ => Err(format!("expected null, got {value:?}")),
        }
    }
}

// ------------------------------------------------------------------ container impls ---------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        value
            .as_seq()
            .ok_or_else(|| format!("expected sequence, got {value:?}"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, String> {
        match value.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(format!("expected 2-element sequence, got {value:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].to_value()).unwrap(), vec![1, 2]);
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert!(v.get("b").is_none());
    }

    #[test]
    fn signed_range_checks() {
        assert!(i8::from_value(&Value::I64(1000)).is_err());
        assert_eq!(i64::from_value(&Value::U64(7)).unwrap(), 7);
    }
}

//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha) crate.
//!
//! Exposes a [`ChaCha8Rng`] type with the construction/stream API the workspace uses. The
//! underlying generator is xoshiro256++ (seeded through SplitMix64), not the ChaCha stream
//! cipher: every consumer in this workspace only needs a fast, statistically solid,
//! reproducible stream, and no code here is cryptographic. Streams are deterministic per
//! seed but not bit-compatible with the real crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A deterministic pseudo-random generator (xoshiro256++ under the real crate's name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        // Expand the 64-bit seed into four non-degenerate state words.
        let state =
            [splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s), splitmix64(&mut s)];
        ChaCha8Rng { state }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // Canonical xoshiro256++ step.
        let [mut s0, mut s1, mut s2, mut s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (a.next_u64(), a.next_u64(), a.next_u64()),
            (b.next_u64(), b.next_u64(), b.next_u64())
        );
    }

    #[test]
    fn stream_is_not_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first = rng.next_u64();
        assert!((0..100).any(|_| rng.next_u64() != first));
    }

    #[test]
    fn rough_uniformity_of_gen_bool() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4500..5500).contains(&heads), "heads = {heads}");
    }
}

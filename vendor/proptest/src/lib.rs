//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Re-implements the API subset this workspace's property tests use: the [`proptest!`]
//! macro, [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::prop_flat_map`],
//! range, tuple, [`Just`] and [`prop_oneof!`] strategies, [`any`], [`collection::vec`],
//! [`ProptestConfig`], and the `prop_assert*` macros.
//!
//! Each test runs its body over `cases` deterministic pseudo-random inputs. Unlike the real
//! crate there is **no shrinking** and no failure persistence: a failing case panics with the
//! case number, and re-running reproduces it exactly (the input stream is seeded per case).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Mirror of the real crate's `prop` re-export module (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// The deterministic input stream driving one test case (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform integer below `span` (`span > 0`).
    pub fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The input stream for one test case (used by the [`proptest!`] expansion).
pub fn test_rng(case: u64) -> TestRng {
    TestRng { state: case.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ 0x5DEE_CE66_D1CE_4E5B }
}

/// A recipe for producing pseudo-random values of one type.
pub trait Strategy {
    /// The type of produced values.
    type Value;

    /// Produces one value from the input stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `map`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, map }
    }

    /// Builds a dependent strategy from each produced value and draws from it.
    fn prop_flat_map<T: Strategy, F: Fn(Self::Value) -> T>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, map }
    }

    /// Type-erases this strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.map)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased strategy, as stored by [`OneOf`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased strategies (built by [`prop_oneof!`]).
pub struct OneOf<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one strategy");
        let pick = rng.below(self.0.len() as u64) as usize;
        self.0[pick].generate(rng)
    }
}

/// A strategy drawing uniformly from the listed strategies (no weight syntax).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(usize, u64, u32, u16, u8);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F) }

/// A type with a canonical "any value" strategy (the real crate's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specifications accepted by [`vec`]: a fixed length or a half-open range.
    pub trait LenSpec {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl LenSpec for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl LenSpec for std::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: LenSpec> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.draw(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing vectors of `element` values with the given length spec.
    pub fn vec<S: Strategy, L: LenSpec>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// running `body` over `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_case_rng = $crate::test_rng(u64::from(case));
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut proptest_case_rng);)*
                    let run = || -> () { $body };
                    run();
                }
            }
        )*
    };
    ($($tokens:tt)*) => {
        $crate::proptest! { #![proptest_config($crate::ProptestConfig::default())] $($tokens)* }
    };
}

/// Asserts a condition inside a property test (panics — no shrinking in the stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_produce_in_range_values() {
        let mut rng = crate::test_rng(3);
        let strategy = (2usize..40, 0.0f64..0.4).prop_map(|(n, p)| (n * 2, p));
        for _ in 0..200 {
            let (n, p) = crate::Strategy::generate(&strategy, &mut rng);
            assert!((4..80).contains(&n));
            assert!((0.0..0.4).contains(&p));
        }
    }

    #[test]
    fn vec_strategy_has_requested_length() {
        let mut rng = crate::test_rng(1);
        let v = crate::Strategy::generate(&crate::collection::vec(any::<bool>(), 40), &mut rng);
        assert_eq!(v.len(), 40);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_expansion_runs(x in 0u64..10, flag in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert_ne!(u64::from(flag), 2);
        }
    }
}

//! # localkit — uniform LOCAL algorithms via pruning (facade crate)
//!
//! A reproduction of *"Toward more localized local algorithms: removing assumptions concerning
//! global knowledge"* (Korman, Sereni, Viennot; PODC 2011 / Distributed Computing 2013).
//! This facade re-exports the four library crates:
//!
//! * [`runtime`] — the synchronous LOCAL-model simulator;
//! * [`graphs`] — graph generators and global-parameter computation;
//! * [`algos`] — the baseline (mostly non-uniform) LOCAL algorithms of Table 1;
//! * [`uniform`] — the paper's contribution: pruning algorithms and the transformers of
//!   Theorems 1–5, plus a catalog of ready-made uniform algorithms.
//!
//! ```
//! use localkit::uniform::catalog;
//! use localkit::uniform::problem::{MisProblem, Problem};
//!
//! let graph = localkit::graphs::gnp(64, 0.1, 7);
//! let run = catalog::uniform_coloring_mis().solve(&graph, &vec![(); 64], 0);
//! assert!(run.solved);
//! MisProblem.validate(&graph, &vec![(); 64], &run.outputs).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use local_algos as algos;
pub use local_graphs as graphs;
pub use local_runtime as runtime;
pub use local_uniform as uniform;

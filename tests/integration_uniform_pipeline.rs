//! Cross-crate integration tests: graphs → baseline algorithms → transformers → validators.

use localkit::graphs::{Family, GraphParams};
use localkit::uniform::catalog;
use localkit::uniform::problem::{MatchingProblem, MisProblem, Problem, RulingSetProblem};

fn units(n: usize) -> Vec<()> {
    vec![(); n]
}

#[test]
fn uniform_mis_works_across_all_graph_families() {
    for family in Family::ALL {
        let g = family.generate(72, 3);
        let n = g.node_count();
        let run = catalog::uniform_coloring_mis().solve(&g, &units(n), 0);
        assert!(run.solved, "{} unsolved", family.name());
        MisProblem
            .validate(&g, &units(n), &run.outputs)
            .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
    }
}

#[test]
fn uniform_matching_works_across_families() {
    for family in [Family::Path, Family::Grid, Family::SparseGnp, Family::Forest3, Family::UnitDisk]
    {
        let g = family.generate(64, 5);
        let n = g.node_count();
        let run = catalog::uniform_matching().solve(&g, &units(n), 1);
        assert!(run.solved, "{} unsolved", family.name());
        MatchingProblem
            .validate(&g, &units(n), &run.outputs)
            .unwrap_or_else(|e| panic!("{}: {e}", family.name()));
    }
}

#[test]
fn uniform_ruling_set_is_las_vegas_correct() {
    for seed in 0..4u64 {
        let g = Family::UnitDisk.generate(90, seed);
        let n = g.node_count();
        let run = catalog::uniform_ruling_set(3).solve(&g, &units(n), seed);
        assert!(run.solved);
        RulingSetProblem::two(3).validate(&g, &units(n), &run.outputs).unwrap();
    }
}

#[test]
fn uniform_coloring_theorem5_across_families() {
    for family in [Family::Path, Family::Grid, Family::SparseGnp, Family::PowerLaw] {
        let g = family.generate(72, 2);
        let transformer = catalog::uniform_lambda_coloring(1);
        let run = transformer.solve(&g, 0);
        assert!(run.solved, "{} unsolved", family.name());
        localkit::algos::checkers::check_coloring(&g, &run.colors)
            .unwrap_or_else(|e| panic!("{}: {e:?}", family.name()));
        let bound = transformer.palette_bound(g.max_degree() as u64);
        assert!(
            (localkit::algos::checkers::palette_size(&run.colors) as u64) <= bound,
            "{}: palette exceeded",
            family.name()
        );
    }
}

#[test]
fn headline_claim_uniform_matches_nonuniform_up_to_constant() {
    // Corollary 1 / Table 1: the uniform algorithm's rounds stay within a constant factor of
    // the non-uniform baseline run with correct guesses, across sizes.
    let black_box = catalog::coloring_mis_black_box();
    let mut ratios = Vec::new();
    for n in [64usize, 128, 256] {
        let g = Family::Regular6.generate(n, 9);
        let p = GraphParams::of(&g);
        let nu = (black_box.build)(&[p.max_degree, p.max_id]).execute(
            &g,
            &units(g.node_count()),
            None,
            0,
        );
        let uni = catalog::uniform_coloring_mis().solve(&g, &units(g.node_count()), 0);
        assert!(uni.solved && nu.completed);
        ratios.push(uni.rounds as f64 / nu.rounds.max(1) as f64);
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    assert!(max <= 32.0, "overhead ratio {max} too large: {ratios:?}");
    // And the ratio does not blow up with n.
    assert!(ratios[2] <= 4.0 * ratios[0] + 4.0, "ratio grows with n: {ratios:?}");
}

#[test]
fn scrambled_identities_do_not_break_uniform_algorithms() {
    // Uniform algorithms may rely on identities for symmetry breaking only, not on their
    // magnitudes being 0..n.
    let base = Family::SparseGnp.generate(80, 4);
    let g = localkit::graphs::scramble_ids(&base, 1 << 40, 9);
    let n = g.node_count();
    let run = catalog::uniform_coloring_mis().solve(&g, &units(n), 0);
    assert!(run.solved);
    MisProblem.validate(&g, &units(n), &run.outputs).unwrap();
}

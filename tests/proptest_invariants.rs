//! Property-based tests (proptest) over the core data structures and the paper's invariants:
//! graph construction, induced subgraphs, parameter monotonicity, set-sequence properties and
//! the pruning algorithms' solution-detection / gluing properties on arbitrary inputs.

use localkit::graphs::{gnp, Parameter};
use localkit::runtime::Graph;
use localkit::uniform::funcs::monotone;
use localkit::uniform::problem::{MisProblem, Problem};
use localkit::uniform::pruning::{MatchingPruning, PruningAlgorithm, RulingSetPruning};
use localkit::uniform::seqnum::{check_set_sequence_properties, TimeBound};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..40, 0.0f64..0.4, 0u64..1000).prop_map(|(n, p, seed)| gnp(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn induced_subgraph_preserves_ids_and_monotone_parameters(
        g in arbitrary_graph(),
        mask_seed in 0u64..u64::MAX,
    ) {
        let n = g.node_count();
        let keep: Vec<bool> = (0..n).map(|v| (mask_seed >> (v % 64)) & 1 == 1).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), keep.iter().filter(|&&k| k).count());
        for (new, &old) in back.iter().enumerate() {
            prop_assert_eq!(sub.id(new), g.id(old));
        }
        for p in [Parameter::N, Parameter::MaxDegree, Parameter::Degeneracy, Parameter::MaxId] {
            prop_assert!(p.eval(&sub) <= p.eval(&g), "{} not monotone", p.name());
        }
    }

    #[test]
    fn reverse_ports_always_consistent(g in arbitrary_graph()) {
        for v in 0..g.node_count() {
            for port in 0..g.degree(v) {
                let w = g.neighbor(v, port);
                prop_assert_eq!(g.neighbor(w, g.reverse_port(v, port)), v);
            }
        }
    }

    #[test]
    fn additive_set_sequences_satisfy_their_contract(
        budget in 1u64..4096,
        y0 in 1u64..10_000,
        y1 in 1u64..10_000,
    ) {
        let bound = TimeBound::Additive(vec![
            monotone(|x| (x as f64).sqrt()),
            monotone(|x| (x.max(2) as f64).log2()),
        ]);
        prop_assert!(check_set_sequence_properties(&bound, budget, &[y0, y1]).is_ok());
    }

    #[test]
    fn product_set_sequences_satisfy_their_contract(
        budget in 2u64..4096,
        y0 in 1u64..500,
        y1 in 2u64..100_000,
    ) {
        let bound = TimeBound::Product(
            monotone(|x| x.max(1) as f64),
            monotone(|x| (x.max(2) as f64).log2().max(1.0)),
        );
        prop_assert!(check_set_sequence_properties(&bound, budget, &[y0, y1]).is_ok());
    }

    #[test]
    fn mis_pruning_gluing_holds_for_arbitrary_tentative_outputs(
        g in arbitrary_graph(),
        bits in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let n = g.node_count();
        let tentative: Vec<bool> = (0..n).map(|v| bits[v % bits.len()]).collect();
        let pruning = RulingSetPruning::mis();
        let result = PruningAlgorithm::<MisProblem>::prune(&pruning, &localkit::runtime::GraphView::full(&g), &vec![(); n], &tentative);
        // Solution detection (contrapositive direction via gluing): solve the remainder and glue.
        let keep: Vec<bool> = result.pruned.iter().map(|&p| !p).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        let sub_solution = localkit::algos::mis::central_greedy_mis(&sub);
        let mut combined = tentative.clone();
        for (i, &orig) in back.iter().enumerate() {
            combined[orig] = sub_solution[i];
        }
        prop_assert!(MisProblem.validate(&g, &vec![(); n], &combined).is_ok());
        // Solution detection (direct direction): a correct solution is fully pruned.
        let correct = localkit::algos::mis::central_greedy_mis(&g);
        let detect = PruningAlgorithm::<MisProblem>::prune(&pruning, &localkit::runtime::GraphView::full(&g), &vec![(); n], &correct);
        prop_assert!(detect.all_pruned());
    }

    #[test]
    fn matching_pruning_gluing_holds_for_arbitrary_claims(
        g in arbitrary_graph(),
        choices in proptest::collection::vec(0usize..8, 40),
    ) {
        let n = g.node_count();
        // Arbitrary (often inconsistent) partner claims.
        let tentative: Vec<Option<u64>> = (0..n)
            .map(|v| {
                let nbrs = g.neighbors(v);
                if nbrs.is_empty() {
                    None
                } else {
                    let pick = choices[v % choices.len()];
                    if pick < nbrs.len() { Some(g.id(nbrs[pick])) } else { None }
                }
            })
            .collect();
        let result = MatchingPruning.prune(&localkit::runtime::GraphView::full(&g), &vec![(); n], &tentative);
        let keep: Vec<bool> = result.pruned.iter().map(|&p| !p).collect();
        let (sub, back) = g.induced_subgraph(&keep);
        let sub_solution = localkit::algos::synthetic::central_greedy_matching(&sub);
        let mut combined = tentative.clone();
        MatchingPruning.normalize(&localkit::runtime::GraphView::full(&g), &mut combined);
        for (i, &orig) in back.iter().enumerate() {
            combined[orig] = sub_solution[i];
        }
        prop_assert!(
            localkit::uniform::problem::MatchingProblem.validate(&g, &vec![(); n], &combined).is_ok()
        );
    }

    #[test]
    fn luby_mis_is_always_correct_when_it_completes(
        g in arbitrary_graph(),
        seed in 0u64..1000,
    ) {
        use localkit::runtime::GraphAlgorithm;
        let n = g.node_count();
        let run = localkit::algos::mis::LubyMis.execute(&g, &vec![(); n], None, seed);
        prop_assert!(run.completed);
        prop_assert!(MisProblem.validate(&g, &vec![(); n], &run.outputs).is_ok());
    }
}
